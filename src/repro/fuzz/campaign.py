"""Coverage-guided differential fuzz campaign over the DSL generator.

AFL-shaped, sized for a simulator test harness:

* a **seed corpus** spans the whole generator taxonomy (NB-rich Type C
  first — historically the riskiest query-resolution paths — then
  B/A and two "huge"-family Type D designs), plus any extra spec files
  the caller supplies;
* a **deterministic stage** walks every corpus member through boundary
  mutations first (trip count halved/doubled, depths pinned/doubled,
  write-mode flips, ii bumps) — the cheap systematic sweep that finds
  most spec-shape bugs before any dice are rolled;
* a **havoc stage** then applies seeded random operators from
  :mod:`repro.fuzz.mutate`, with parents drawn from the corpus;
* every candidate runs the three-way differential of
  :mod:`repro.fuzz.differential` under a :class:`~repro.fuzz.coverage.
  CoverageHook`; candidates exercising new engine arcs are **adopted**
  into the corpus (and queued for their own deterministic stage), so
  mutation energy follows behavioural novelty;
* divergences are **minimized** (:mod:`repro.fuzz.minimize`) and
  **pinned**: a YAML spec plus a JSON sidecar recording the campaign
  seed, candidate key, divergence legs and the exact replay command.

Determinism: candidate order and every mutation draw derive from
``random.Random(("fuzz", seed, round).__repr__())`` — string seeding,
stable across processes and ``PYTHONHASHSEED``.  Evaluation runs under
the PR 6 supervisor (:func:`repro.exec.run_serial`: retry, backoff,
quarantine) with an optional checkpoint journal; ``--resume`` replays
journalled verdicts (adoption and divergence decisions) without
re-simulating, then continues the remaining budget live.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import random
import time
from collections import deque
from dataclasses import dataclass, field

from ..designs import dsl
from ..designs.dsl.schema import FifoSpec, SpecError, validate_spec
from ..exec import CheckpointJournal, ExecPolicy, Unit, run_serial
from .coverage import CoverageHook, CoverageMap
from .differential import (
    DEFAULT_MAX_CYCLES,
    Divergence,
    run_differential,
)
from .minimize import minimize
from .mutate import mutate

#: (type, modules, seed) triples for the built-in seed corpus.  NB-rich
#: Type C leads so the deterministic stage reaches non-blocking query
#: resolution first; D entries keep the huge family in every campaign.
SEED_FAMILIES = (
    ("C", 3, 0), ("C", 3, 1), ("C", 3, 2), ("C", 3, 3),
    ("C", 3, 4), ("C", 3, 5),
    ("B", 3, 0), ("B", 4, 1),
    ("A", 3, 0),
    ("D", 12, 0), ("D", 16, 1),
)
SEED_COUNT = 24  # trip count for generated corpus seeds
_HAVOC_ROUND = 16
_DET_CAP = 18  # deterministic mutants per parent


@dataclass
class CampaignConfig:
    seed: int = 0
    budget: int = 200
    minutes: float | None = None
    corpus_dir: str | None = None
    pin_dir: str = "fuzz_pins"
    checkpoint: str | None = None
    resume: bool = False
    max_cycles: int = DEFAULT_MAX_CYCLES
    coverage_backend: str | None = None
    min_evals: int = 120  # minimization oracle budget per finding


@dataclass
class Finding:
    name: str
    kind: str
    detail: str
    spec_path: str
    sidecar_path: str
    minimize_steps: list = field(default_factory=list)


@dataclass
class CampaignReport:
    evaluated: int = 0
    resumed: int = 0
    corpus: int = 0
    coverage_edges: int = 0
    findings: list = field(default_factory=list)
    quarantined: int = 0
    seconds: float = 0.0

    def to_json(self) -> dict:
        return {
            "evaluated": self.evaluated,
            "resumed": self.resumed,
            "corpus": self.corpus,
            "coverage_edges": self.coverage_edges,
            "findings": [
                {"name": f.name, "kind": f.kind, "detail": f.detail,
                 "spec": f.spec_path, "sidecar": f.sidecar_path,
                 "minimize_steps": f.minimize_steps}
                for f in self.findings
            ],
            "quarantined": self.quarantined,
            "seconds": round(self.seconds, 3),
        }


def _candidate_key(desc: str, yaml_text: str) -> str:
    digest = hashlib.sha256(
        (desc + "\n" + yaml_text).encode("utf-8")).hexdigest()
    return digest[:16]


def _clone(spec):
    twin = copy.deepcopy(spec)
    twin.fifo_writers = {}
    twin.fifo_readers = {}
    return twin


def _validated(spec):
    try:
        validate_spec(spec)
    except SpecError:
        return None
    return spec


def seed_corpus(corpus_dir: str | None = None) -> list:
    """``[(label, spec), ...]`` — built-in taxonomy seeds plus any
    ``*.yaml`` / ``*.json`` specs found in ``corpus_dir``."""
    entries = []
    for family, modules, seed in SEED_FAMILIES:
        spec = dsl.generate(family, modules=modules, seed=seed,
                            count=SEED_COUNT)
        entries.append((f"{family}-m{modules}-s{seed}", spec))
    if corpus_dir:
        for name in sorted(os.listdir(corpus_dir)):
            if not name.endswith(tuple(dsl.SPEC_SUFFIXES)):
                continue
            spec = dsl.load_spec(os.path.join(corpus_dir, name))
            entries.append((f"corpus:{name}", spec))
    return entries


def deterministic_mutants(spec):
    """Boundary mutants of one parent, in fixed order (AFL's
    deterministic stage, scaled to spec granularity)."""
    out = []

    n = spec.constants.get("n")
    if isinstance(n, int):
        for value in (max(1, n // 2), n * 2, n * 2 + 1):
            if value == n:
                continue
            mutant = _clone(spec)
            mutant.constants["n"] = value
            out.append((f"det:n={value}", mutant))

    for fifo in spec.fifos[:4]:
        for depth in (1, fifo.depth * 2):
            if depth == fifo.depth:
                continue
            mutant = _clone(spec)
            for i, f in enumerate(mutant.fifos):
                if f.name == fifo.name:
                    mutant.fifos[i] = FifoSpec(name=f.name, type=f.type,
                                               depth=depth)
            out.append((f"det:depth({fifo.name})={depth}", mutant))

    for module in spec.modules:
        if (module.role == "producer" and "count" in module.params
                and "done" not in module.params):
            mutant = _clone(spec)
            twin = next(m for m in mutant.modules
                        if m.name == module.name)
            if twin.params.get("write", "blocking") == "nb_drop":
                twin.params["write"] = "blocking"
                twin.params.pop("dropped", None)
                flip = "blocking"
            else:
                twin.params["write"] = "nb_drop"
                flip = "nb_drop"
            out.append((f"det:write({module.name})={flip}", mutant))

    bumped = 0
    for module in spec.modules:
        if module.role in ("producer", "worker", "sink") and bumped < 4:
            mutant = _clone(spec)
            twin = next(m for m in mutant.modules
                        if m.name == module.name)
            twin.params["ii"] = int(twin.params.get("ii", 1)) + 1
            out.append((f"det:ii({module.name})+1", mutant))
            bumped += 1

    return [(desc, m) for desc, m in out[:_DET_CAP]
            if _validated(m) is not None]


def _round_rng(seed: int, round_index: int) -> random.Random:
    return random.Random(("fuzz", seed, round_index).__repr__())


def _pin_name(kind: str, yaml_text: str) -> str:
    return f"pin_{kind}_{hashlib.sha256(yaml_text.encode('utf-8')).hexdigest()[:10]}"


def pin_finding(pin_dir, spec, divergence, *, campaign_seed,
                candidate_key, origin, minimize_steps,
                max_cycles=DEFAULT_MAX_CYCLES):
    """Write the minimized spec + sidecar; returns (Finding, created)."""
    os.makedirs(pin_dir, exist_ok=True)
    yaml_text = dsl.spec_to_yaml(spec)
    name = _pin_name(divergence.kind, yaml_text)
    spec_path = os.path.join(pin_dir, f"{name}.yaml")
    sidecar_path = os.path.join(pin_dir, f"{name}.json")
    created = not os.path.exists(spec_path)
    if created:
        with open(spec_path, "w", encoding="utf-8") as fh:
            fh.write(yaml_text)
        sidecar = {
            "schema": 1,
            "kind": divergence.kind,
            "detail": divergence.detail,
            "legs": {k: list(v) for k, v in divergence.legs.items()},
            "campaign_seed": campaign_seed,
            "candidate": candidate_key,
            "origin": origin,
            "minimize_steps": minimize_steps,
            "max_cycles": max_cycles,
            "command": (f"python -m repro fuzz --replay {spec_path} "
                        f"--seed {campaign_seed}"),
        }
        with open(sidecar_path, "w", encoding="utf-8") as fh:
            json.dump(sidecar, fh, indent=2, sort_keys=True)
            fh.write("\n")
    finding = Finding(name=name, kind=divergence.kind,
                      detail=divergence.detail, spec_path=spec_path,
                      sidecar_path=sidecar_path,
                      minimize_steps=list(minimize_steps))
    return finding, created


def run_campaign(config: CampaignConfig, *, log=None) -> CampaignReport:
    """Run one fuzz campaign; returns the report (findings pinned on
    disk as a side effect)."""
    say = log or (lambda message: None)
    started = time.monotonic()
    deadline = (started + config.minutes * 60.0
                if config.minutes else None)

    corpus = seed_corpus(config.corpus_dir)
    say(f"corpus: {len(corpus)} seed specs")
    coverage = CoverageMap()
    report = CampaignReport()

    # work queue: seeds evaluate first, then each parent's deterministic
    # stage; havoc rounds are appended when the queue drains.
    pending: deque = deque()
    for label, spec in corpus:
        pending.append((f"seed:{label}", spec))
    for label, spec in corpus:
        for desc, mutant in deterministic_mutants(spec):
            pending.append((f"{label}/{desc}", mutant))

    journal, restored = None, {}
    if config.checkpoint:
        # budget is deliberately not part of the identity: resuming
        # with a larger --budget is how a campaign is continued.
        identity = {
            "kind": "fuzz",
            "seed": config.seed,
            "corpus": hashlib.sha256("\n".join(
                label for label, _ in corpus).encode("utf-8")
            ).hexdigest()[:16],
        }
        journal, restored = CheckpointJournal.open(
            config.checkpoint, identity, resume=config.resume)

    pinned_kinds: set = set()

    def handle_divergence(spec, divergence, desc, key):
        kind = divergence.kind

        def oracle(candidate):
            rep = run_differential(candidate,
                                   max_cycles=config.max_cycles)
            return (rep.divergence is not None
                    and rep.divergence.kind == kind)

        say(f"divergence ({kind}) at {desc}; minimizing...")
        small, evals, steps = minimize(spec, oracle,
                                       max_evals=config.min_evals)
        # Canonical identity so equivalent minima from different
        # parents collapse into one pin; re-record the legs from the
        # minimized spec (the original's are only the discovery record).
        small.name = f"fuzz-{kind}-min"
        small.description = f"minimized {kind} divergence"
        final = run_differential(small, max_cycles=config.max_cycles)
        if final.divergence is not None:
            divergence = final.divergence
        finding, created = pin_finding(
            config.pin_dir, small, divergence,
            campaign_seed=config.seed, candidate_key=key, origin=desc,
            minimize_steps=steps, max_cycles=config.max_cycles)
        if created:
            say(f"pinned {finding.name} "
                f"({len(steps)} reductions, {evals} oracle evals)")
        if (finding.name, kind) not in pinned_kinds:
            pinned_kinds.add((finding.name, kind))
            report.findings.append(finding)

    def evaluate(payload):
        desc, yaml_text = payload
        spec = dsl.parse_spec(yaml_text, origin=desc)
        with CoverageHook(backend=config.coverage_backend) as hook:
            diff = run_differential(spec, max_cycles=config.max_cycles)
        new_edges = coverage.merge(hook.edges)
        outcome = {
            "desc": desc,
            "new_edges": new_edges,
            "kept": new_edges > 0 and diff.divergence is None,
        }
        if diff.divergence is not None:
            outcome["divergence"] = diff.divergence.to_dict()
        return outcome

    havoc_round = 0
    policy = ExecPolicy(max_retries=2, seed=config.seed)

    while report.evaluated < config.budget:
        if deadline is not None and time.monotonic() >= deadline:
            say("time budget exhausted")
            break
        if not pending:
            rng = _round_rng(config.seed, havoc_round)
            havoc_round += 1
            for _ in range(_HAVOC_ROUND):
                label, parent = corpus[rng.randrange(len(corpus))]
                drawn = mutate(parent, rng)
                if drawn is None:
                    continue
                mutant, op_name = drawn
                pending.append(
                    (f"havoc{havoc_round - 1}:{label}/{op_name}",
                     mutant))
            if not pending:
                continue

        batch = []
        while pending and len(batch) < 8 \
                and report.evaluated + len(batch) < config.budget:
            desc, spec = pending.popleft()
            yaml_text = dsl.spec_to_yaml(spec)
            batch.append((desc, yaml_text, spec))

        units, reused = [], []
        for desc, yaml_text, spec in batch:
            key = _candidate_key(desc, yaml_text)
            doc = restored.get(key)
            if doc is not None:
                reused.append((key, desc, spec, doc))
            else:
                units.append(Unit(len(units), key, (desc, yaml_text)))

        for key, desc, spec, doc in reused:
            report.evaluated += 1
            report.resumed += 1
            if doc.get("kept"):
                corpus.append((f"adopted:{desc}", spec))
                for det_desc, mutant in deterministic_mutants(spec):
                    pending.append((f"adopted:{desc}/{det_desc}",
                                    mutant))
            divergence_doc = doc.get("divergence")
            if divergence_doc is not None:
                handle_divergence(
                    spec,
                    Divergence(kind=divergence_doc["kind"],
                               detail=divergence_doc["detail"],
                               legs={k: tuple(v) for k, v in
                                     divergence_doc["legs"].items()}),
                    desc, key)

        if not units:
            continue

        def record(unit, status, value):
            if journal is None:
                return
            doc = (value if status == "ok"
                   else {"desc": unit.payload[0], "quarantined": value,
                         "kept": False})
            journal.append(unit.key, doc)

        results, sup = run_serial(units, evaluate, policy=policy,
                                  record=record)
        report.quarantined += len(sup.quarantined)
        spec_by_index = {
            unit.index: next(s for d, y, s in batch
                             if _candidate_key(d, y) == unit.key)
            for unit in units
        }
        for unit in units:
            report.evaluated += 1
            status, value = results[unit.index]
            if status != "ok":
                continue
            if value.get("kept"):
                spec = spec_by_index[unit.index]
                corpus.append((f"adopted:{value['desc']}", spec))
                for det_desc, mutant in deterministic_mutants(spec):
                    pending.append(
                        (f"adopted:{value['desc']}/{det_desc}", mutant))
            divergence_doc = value.get("divergence")
            if divergence_doc is not None:
                handle_divergence(
                    spec_by_index[unit.index],
                    Divergence(kind=divergence_doc["kind"],
                               detail=divergence_doc["detail"],
                               legs={k: tuple(v) for k, v in
                                     divergence_doc["legs"].items()}),
                    value["desc"], unit.key)

    if journal is not None:
        journal.close()
    report.corpus = len(corpus)
    report.coverage_edges = len(coverage)
    report.seconds = time.monotonic() - started
    return report
