"""Seeded spec mutation operators.

Every operator takes ``(spec, rng)``, mutates a deep copy **in place**
and reports whether it changed anything; :func:`mutate` wraps them with
validation so only specs that pass :func:`~repro.designs.dsl.schema.
validate_spec` ever leave this module.  Invalid mutants are discarded,
not repaired — the schema's role constraints are the ground truth for
what a designable mutation is.

The operator set mirrors the tentpole list:

=================  ======================================================
operator           effect
=================  ======================================================
splice_stage       insert a fresh worker on an existing FIFO edge
drop_stage         remove a pass-through worker, reconnecting its edge
retarget_fifos     swap the consumers of two FIFO edges
flip_write_mode    producer ``blocking`` <-> ``nb_drop`` discipline
perturb_depth      re-draw one FIFO's depth
perturb_ii         re-draw one module's initiation interval (offset)
perturb_count      re-draw the shared trip count ``n``
perturb_op         re-draw one worker's affine op
=================  ======================================================

Mutants may legitimately deadlock — the differential harness treats
"every engine deadlocks identically" as agreement, and divergent
deadlocks are exactly the findings the fuzzer exists for.
"""

from __future__ import annotations

import copy

from ..designs.dsl.schema import (
    DslSpec,
    FifoSpec,
    ModuleSpec,
    SpecError,
    validate_spec,
)

_DEPTHS = (1, 1, 2, 2, 4, 8, 16, 32)
_IIS = (1, 1, 2, 3, 5, 8)
_COUNTS = (1, 2, 3, 5, 8, 13, 24, 48)


# ---------------------------------------------------------------------------
# read-endpoint helpers (who consumes a fifo, and via which param field)


def _reader_field(module: ModuleSpec, fifo: str):
    """The ``(param_key, index)`` through which ``module`` reads
    ``fifo``, or ``None``.  ``index`` is the position for list-valued
    ``in`` fields (combiner), else ``None``."""
    if module.role is None:
        return None  # source modules are never retargeted
    value = module.params.get("in")
    if value == fifo:
        return ("in", None)
    if isinstance(value, list) and fifo in value:
        return ("in", value.index(fifo))
    if module.role == "producer" and module.params.get("done") == fifo:
        return ("done", None)
    return None


def _find_reader(spec: DslSpec, fifo: str):
    for module in spec.modules:
        field = _reader_field(module, fifo)
        if field is not None:
            return module, field
    return None, None


def _retarget_read(module: ModuleSpec, field, new_fifo: str) -> None:
    key, index = field
    if index is None:
        module.params[key] = new_fifo
    else:
        module.params[key][index] = new_fifo


def _fresh_fifo_name(spec: DslSpec) -> str:
    taken = {f.name for f in spec.fifos}
    i = len(spec.fifos)
    while f"fx{i}" in taken:
        i += 1
    return f"fx{i}"


def _fresh_module_name(spec: DslSpec) -> str:
    taken = {m.name for m in spec.modules}
    i = len(spec.modules)
    while f"mx{i}" in taken:
        i += 1
    return f"mx{i}"


def _sentinel_reader(module: ModuleSpec) -> bool:
    return module.params.get("mode") == "sentinel"


# ---------------------------------------------------------------------------
# operators


def op_perturb_depth(spec, rng) -> bool:
    if not spec.fifos:
        return False
    i = rng.randrange(len(spec.fifos))
    fifo = spec.fifos[i]
    depth = rng.choice(_DEPTHS)
    if depth == fifo.depth:
        depth = depth + 1
    spec.fifos[i] = FifoSpec(name=fifo.name, type=fifo.type, depth=depth)
    return True


def op_perturb_ii(spec, rng) -> bool:
    candidates = [m for m in spec.modules
                  if m.role in ("producer", "worker", "splitter",
                                "combiner", "sink")]
    if not candidates:
        return False
    module = rng.choice(candidates)
    module.params["ii"] = rng.choice(_IIS)
    return True


def op_perturb_count(spec, rng) -> bool:
    if "n" not in spec.constants:
        return False
    old = spec.constants["n"]
    new = rng.choice(_COUNTS)
    if new == old:
        new = max(1, old - 1)
    spec.constants["n"] = new
    return True


def op_perturb_op(spec, rng) -> bool:
    workers = [m for m in spec.modules
               if m.role == "worker" and "op" in m.params]
    if not workers:
        return False
    module = rng.choice(workers)
    sentinel = _sentinel_reader(module)
    module.params["op"] = {
        "kind": "affine",
        "mul": rng.choice((1, 2, 3, 5)),
        "add": rng.randint(0, 7) if sentinel else rng.randint(-4, 7),
    }
    return True


def op_flip_write_mode(spec, rng) -> bool:
    """``blocking`` <-> ``nb_drop`` on a done-less producer (the only
    flip that is always locally repairable: nb_retry needs a done fifo,
    which would need a whole new edge)."""
    producers = [m for m in spec.modules
                 if m.role == "producer" and "done" not in m.params
                 and "count" in m.params]
    if not producers:
        return False
    module = rng.choice(producers)
    if module.params.get("write", "blocking") == "nb_drop":
        module.params["write"] = "blocking"
        module.params.pop("dropped", None)
    else:
        module.params["write"] = "nb_drop"
    return True


def op_splice_stage(spec, rng) -> bool:
    """Insert a fresh pass-through worker on one FIFO edge."""
    candidates = []
    for fifo in spec.fifos:
        reader, field = _find_reader(spec, fifo.name)
        if reader is None or field[0] == "done":
            continue  # never splice into a done handshake
        candidates.append((fifo, reader, field))
    if not candidates:
        return False
    fifo, reader, field = candidates[rng.randrange(len(candidates))]
    sentinel = _sentinel_reader(reader) or reader.params.get("mode") == "poll"
    if not sentinel and "n" not in spec.constants:
        return False
    new_fifo = _fresh_fifo_name(spec)
    spec.fifos.append(FifoSpec(name=new_fifo, type=fifo.type,
                               depth=rng.choice(_DEPTHS)))
    params = {"in": fifo.name, "out": new_fifo,
              "op": {"kind": "affine", "mul": 1,
                     "add": rng.randint(0, 3)},
              "ii": rng.choice((1, 1, 2))}
    if sentinel:
        params["mode"] = "sentinel"
    else:
        params["count"] = "n"
    spec.modules.append(ModuleSpec(name=_fresh_module_name(spec),
                                   role="worker", params=params))
    _retarget_read(reader, field, new_fifo)
    return True


def op_drop_stage(spec, rng) -> bool:
    """Remove one single-in/single-out worker, reconnecting its reader
    to its input edge."""
    workers = [m for m in spec.modules
               if m.role == "worker"
               and isinstance(m.params.get("in"), str)
               and isinstance(m.params.get("out"), str)]
    if not workers:
        return False
    module = rng.choice(workers)
    reader, field = _find_reader(spec, module.params["out"])
    if reader is None:
        return False
    _retarget_read(reader, field, module.params["in"])
    spec.modules.remove(module)
    spec.fifos[:] = [f for f in spec.fifos
                     if f.name != module.params["out"]]
    return True


def op_retarget_fifos(spec, rng) -> bool:
    """Swap the consumers of two FIFO edges (keeps the one-writer/
    one-reader invariant; may well produce a deadlocking topology,
    which is a feature)."""
    swappable = []
    for fifo in spec.fifos:
        reader, field = _find_reader(spec, fifo.name)
        if reader is not None and field[0] == "in":
            swappable.append((fifo, reader, field))
    if len(swappable) < 2:
        return False
    (fa, ra, pa), (fb, rb, pb) = rng.sample(swappable, 2)
    if fa.type != fb.type:
        return False  # keep payload protocols intact
    _retarget_read(ra, pa, fb.name)
    _retarget_read(rb, pb, fa.name)
    return True


#: (operator, weight) — weights bias toward the structure-changing ops
#: the coverage signal responds to
OPERATORS = (
    (op_splice_stage, 3),
    (op_drop_stage, 2),
    (op_retarget_fifos, 1),
    (op_flip_write_mode, 2),
    (op_perturb_depth, 3),
    (op_perturb_ii, 2),
    (op_perturb_count, 2),
    (op_perturb_op, 1),
)


def mutate(spec: DslSpec, rng, max_tries: int = 12):
    """One validated mutant of ``spec``, or ``None`` when ``max_tries``
    draws all came back unchanged or invalid.

    Returns ``(mutant, operator_name)``; the mutant keeps the parent's
    name (the campaign renames candidates when it adopts them).
    """
    ops = [op for op, weight in OPERATORS for _ in range(weight)]
    for _ in range(max_tries):
        op = rng.choice(ops)
        mutant = copy.deepcopy(spec)
        mutant.fifo_writers = {}
        mutant.fifo_readers = {}
        try:
            if not op(mutant, rng):
                continue
            validate_spec(mutant)
        except SpecError:
            continue
        return mutant, op.__name__
    return None
