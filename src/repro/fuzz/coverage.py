"""Branch-coverage signal over the engine hot paths.

The fuzz campaign steers mutation energy by *new behaviour*, not by
outputs: a candidate that exercises a previously unseen line-to-line
arc inside the simulation core (deadlock diagnoses, retroactive-commit
edges, forced-query resolution, retiming constraint checks) earns a
place in the corpus even when its differential comes back clean.

Two backends, picked automatically:

* ``sys.monitoring`` (PEP 669, Python 3.12+): per-code-object LINE
  events; locations outside the target modules are disabled at first
  sight, so steady-state overhead is confined to the instrumented
  files;
* ``sys.settrace`` fallback (3.11): a global call hook that only
  installs a local line tracer for frames whose code lives in a target
  module.

Arcs are ``(module, prev_line, line)`` triples per code object — a
cheap approximation of true branch coverage that still distinguishes
"took the deadlock diagnosis" from "fell through".  Coverage collection
never changes simulation behaviour; the hooks are observation-only.
"""

from __future__ import annotations

import importlib
import os
import sys

#: engine modules whose internal control flow guides the fuzzer — the
#: hot paths the tentpole names: query resolution, commit edges,
#:  deadlock diagnosis, incremental/vectorized retiming.
TARGET_MODULES = (
    "repro.sim.omnisim",
    "repro.sim.cosim",
    "repro.sim.incremental",
    "repro.sim.ledger",
    "repro.runtime.fifo",
    "repro.trace.columnar",
    "repro.trace.vectorized",
)


def target_files(modules=TARGET_MODULES) -> dict:
    """Map absolute source path -> short module name for the targets."""
    files = {}
    for name in modules:
        try:
            mod = importlib.import_module(name)
        except ImportError:  # optional targets never break collection
            continue
        path = getattr(mod, "__file__", None)
        if path:
            files[os.path.abspath(path)] = name.rsplit(".", 1)[-1]
    return files


class CoverageMap:
    """The campaign-global accumulator: merge a candidate's arcs, get
    back how many were new."""

    def __init__(self):
        self.edges: set = set()

    def merge(self, edges) -> int:
        fresh = set(edges) - self.edges
        self.edges |= fresh
        return len(fresh)

    def __len__(self) -> int:
        return len(self.edges)


class CoverageHook:
    """Context manager collecting line arcs for one evaluation.

    ``with CoverageHook() as hook: ...; hook.edges`` — the edge set is
    stable for a deterministic evaluation, so campaign replays (resume,
    pinned-regression reruns) observe identical coverage.
    """

    _MONITOR_TOOL_NAME = "repro-fuzz"

    def __init__(self, modules=TARGET_MODULES, backend: str | None = None):
        self.files = target_files(modules)
        self.edges: set = set()
        if backend not in (None, "monitoring", "settrace"):
            raise ValueError(f"unknown coverage backend {backend!r}")
        self.backend = backend
        self._tool_id = None
        self._prev_trace = None
        self._last: dict = {}

    # -- sys.monitoring backend ----------------------------------------

    def _try_monitoring(self) -> bool:
        mon = getattr(sys, "monitoring", None)
        if mon is None:
            return False
        tool_id = None
        for candidate in range(5, -1, -1):
            try:
                mon.use_tool_id(candidate, self._MONITOR_TOOL_NAME)
            except ValueError:
                continue
            tool_id = candidate
            break
        if tool_id is None:
            return False
        files, edges, last = self.files, self.edges, self._last
        disable = mon.DISABLE

        def on_line(code, line):
            name = files.get(code.co_filename)
            if name is None:
                return disable  # never hear from this location again
            key = id(code)
            edges.add((name, last.get(key), line))
            last[key] = line
            return None

        mon.register_callback(tool_id, mon.events.LINE, on_line)
        mon.set_events(tool_id, mon.events.LINE)
        self._tool_id = tool_id
        return True

    def _stop_monitoring(self) -> None:
        mon = sys.monitoring
        mon.set_events(self._tool_id, 0)
        mon.register_callback(self._tool_id, mon.events.LINE, None)
        mon.free_tool_id(self._tool_id)
        self._tool_id = None

    # -- sys.settrace backend ------------------------------------------

    def _start_settrace(self) -> None:
        files, edges = self.files, self.edges

        def global_trace(frame, event, arg):
            if event != "call":
                return None
            name = files.get(frame.f_code.co_filename)
            if name is None:
                return None
            prev = [None]

            def local_trace(frame, event, arg):
                if event == "line":
                    line = frame.f_lineno
                    edges.add((name, prev[0], line))
                    prev[0] = line
                return local_trace

            return local_trace

        self._prev_trace = sys.gettrace()
        sys.settrace(global_trace)

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "CoverageHook":
        self._last.clear()
        if self.backend in (None, "monitoring") and self._try_monitoring():
            return self
        if self.backend == "monitoring":
            raise RuntimeError("sys.monitoring unavailable (need 3.12+ "
                               "and a free tool id)")
        self._start_settrace()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._tool_id is not None:
            self._stop_monitoring()
        else:
            sys.settrace(self._prev_trace)
