"""Three-way differential evaluation of one design spec.

One candidate spec is judged by running it through independent
implementations of the same semantics and demanding byte-identical
observable behaviour:

* **engine legs** — OmniSim with the compiled executor, OmniSim with
  the interpreter, and the cycle-stepped cosim oracle must agree on
  cycle count, scalar outputs, buffer contents and AXI memory images
  (or all report the same failure kind — "every engine deadlocks" is
  agreement; *divergent* deadlocks are findings);
* **retiming legs** — the columnar trace artifact's ``resimulate`` and
  the object-graph oracle :func:`repro.sim.incremental.
  resimulate_object` must agree, per depth configuration, on cycles /
  ``ConstraintViolation`` / error kind;
* **batch legs** — every non-``None`` row of
  :func:`repro.trace.vectorized.resimulate_batch` must be bit-for-bit
  the scalar columnar answer for that row; a declined row or a
  declined batch is fine (the scalar fallback is the contract), a
  *wrong* row is a finding.

Outcomes are normalized to small comparable tuples so a differential
report is JSON-friendly and deterministic for a deterministic engine —
the property campaign resume and pinned-regression replay lean on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import compile_design
from ..designs import dsl
from ..errors import (
    ConstraintViolation,
    DeadlockError,
    ReproError,
    SimulationError,
    UnsupportedDesignError,
)
from ..sim.incremental import resimulate_object
from ..sim.registry import run_engine
from ..trace.columnar import replay_trace
from ..trace.vectorized import batch_supported, resimulate_batch

#: cosim safety net — far above any generated design's real latency, so
#: hitting it means a livelock-class bug, which the outcome encodes.
DEFAULT_MAX_CYCLES = 200_000


@dataclass
class Divergence:
    """One confirmed disagreement between implementations."""

    #: ``engine`` | ``retiming`` | ``batch`` | ``crash``
    kind: str
    detail: str
    #: leg name -> normalized outcome (repr-able, JSON-safe)
    legs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "detail": self.detail,
                "legs": {k: list(v) for k, v in self.legs.items()}}


@dataclass
class DifferentialReport:
    """Everything one candidate evaluation produced."""

    divergence: Divergence | None
    #: leg name -> outcome tuple, engine legs always present
    legs: dict = field(default_factory=dict)
    configs_checked: int = 0


def _outcome(thunk):
    """Run one leg, normalizing its result/exception to a comparable
    tuple.  Deadlock cycles are deliberately excluded: the engines may
    legitimately diagnose the same true deadlock at different clocks."""
    try:
        result = thunk()
    except DeadlockError:
        return ("deadlock",)
    except UnsupportedDesignError:
        return ("unsupported",)
    except ConstraintViolation:
        return ("constraint",)
    except SimulationError as exc:
        return ("failure", type(exc).__name__)
    except ReproError as exc:
        return ("error", type(exc).__name__)
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return ("crash", f"{type(exc).__name__}: {exc}")
    return ("ok", result)


def _fingerprint(result) -> tuple:
    """The observable behaviour an engine must reproduce exactly."""
    return (
        result.cycles,
        tuple(sorted(result.scalars.items())),
        tuple(sorted((k, tuple(v)) for k, v in result.buffers.items())),
        tuple(sorted((k, tuple(v))
                     for k, v in result.axi_memories.items())),
    )


def _retime_configs(depths: dict) -> list:
    """A deterministic probe set over the design's depth space."""
    fifos = sorted(depths)
    if not fifos:
        return []
    configs = [
        {},
        {f: 1 for f in fifos},
        {f: d * 2 for f, d in depths.items()},
        {fifos[0]: depths[fifos[0]] + 1},
        {fifos[-1]: 1},
        {f: 1 for f in fifos[: max(1, len(fifos) // 2)]},
    ]
    seen, unique = set(), []
    for config in configs:
        key = tuple(sorted(config.items()))
        if key not in seen:
            seen.add(key)
            unique.append(config)
    return unique


def _incremental_outcome(thunk):
    out = _outcome(thunk)
    if out[0] != "ok":
        return out
    inc = out[1]
    return ("ok", inc.cycles, tuple(sorted(inc.depths.items())))


def run_differential(spec, *, max_cycles: int = DEFAULT_MAX_CYCLES
                     ) -> DifferentialReport:
    """Evaluate one validated spec across every differential leg."""
    legs: dict = {}
    try:
        compiled = compile_design(dsl.build_design(spec))
    except ReproError as exc:
        # Not a divergence: the spec is simply not lowerable.  Mutants
        # are schema-validated, so this is rare (e.g. a schedule the
        # backend rejects) and identical for every leg by construction.
        legs["compile"] = ("error", type(exc).__name__)
        return DifferentialReport(divergence=None, legs=legs)

    baseline = None

    def _omnisim_compiled():
        nonlocal baseline
        baseline = run_engine("omnisim", compiled)
        return baseline

    engine_legs = (
        ("omnisim[compiled]", _omnisim_compiled),
        ("omnisim[interp]",
         lambda: run_engine("omnisim", compiled, executor="interp")),
        ("cosim",
         lambda: run_engine("cosim", compiled, max_cycles=max_cycles)),
    )
    for name, thunk in engine_legs:
        out = _outcome(thunk)
        if out[0] == "ok":
            out = ("ok",) + _fingerprint(out[1])
        legs[name] = out

    crashed = [n for n, o in legs.items() if o[0] == "crash"]
    if crashed:
        return DifferentialReport(
            divergence=Divergence(
                kind="crash",
                detail=f"engine leg(s) crashed: {', '.join(crashed)}",
                legs=legs),
            legs=legs)
    if len({o for o in legs.values()}) > 1:
        return DifferentialReport(
            divergence=Divergence(
                kind="engine",
                detail="engine legs disagree on outcome/fingerprint",
                legs=legs),
            legs=legs)

    if baseline is None or legs["omnisim[compiled]"][0] != "ok":
        # No successful capture -> nothing to retime; engine agreement
        # (possibly on a shared deadlock) is the whole verdict.
        return DifferentialReport(divergence=None, legs=legs)

    # -- retiming legs: columnar vs object-graph oracle -----------------
    art = replay_trace(baseline)
    depths = {name: ch.depth
              for name, ch in baseline.fifo_channels.items()}
    configs = _retime_configs(depths)
    scalar_outcomes = []
    for i, config in enumerate(configs):
        col = _incremental_outcome(lambda: art.resimulate(config))
        obj = _incremental_outcome(
            lambda: resimulate_object(baseline, config))
        scalar_outcomes.append(col)
        if col != obj:
            legs[f"retime[{i}].columnar"] = col
            legs[f"retime[{i}].object"] = obj
            return DifferentialReport(
                divergence=Divergence(
                    kind="retiming",
                    detail=(f"columnar vs object resimulate disagree "
                            f"on config {config!r}"),
                    legs={f"retime[{i}].columnar": col,
                          f"retime[{i}].object": obj}),
                legs=legs, configs_checked=i + 1)

    # -- batch legs: vectorized rows vs the scalar columnar answers -----
    if configs and batch_supported(art):
        rows = _outcome(lambda: resimulate_batch(art, configs))
        if rows[0] != "ok":
            legs["batch"] = rows
            return DifferentialReport(
                divergence=Divergence(
                    kind="batch",
                    detail="resimulate_batch raised where scalar rows "
                           "completed",
                    legs={"batch": rows}),
                legs=legs, configs_checked=len(configs))
        for i, row in enumerate(rows[1]):
            if row is None:
                continue  # declined row -> scalar fallback, by contract
            got = ("ok", row.cycles, tuple(sorted(row.depths.items())))
            if got != scalar_outcomes[i]:
                return DifferentialReport(
                    divergence=Divergence(
                        kind="batch",
                        detail=(f"vectorized row {i} != scalar "
                                f"resimulate for {configs[i]!r}"),
                        legs={f"batch[{i}]": got,
                              f"scalar[{i}]": scalar_outcomes[i]}),
                    legs=legs, configs_checked=len(configs))

    return DifferentialReport(divergence=None, legs=legs,
                              configs_checked=len(configs))
