"""``repro.trace`` — the columnar, content-addressed trace-artifact layer.

The captured trace is the central artifact of the whole system ("capture
once at C speed, resimulate cheaply at RTL accuracy"); this package
makes it a first-class object shared by every producer and consumer:

* :class:`TraceArtifact` (:mod:`.columnar`) — flat struct-of-arrays
  trace with CSR static edges and the all-depth topological order built
  once and shipped with the artifact (pool workers never rebuild them),
  plus columnar ``retime``/``resimulate`` that are bit-for-bit equal to
  the object-graph path;
* :mod:`.vectorized` — the NumPy batch-retiming kernel: whole depth
  matrices (configs x FIFOs) retimed and constraint-checked as matrix
  sweeps, with per-row scalar fallback (``REPRO_NO_NUMPY`` forces the
  pure-Python path everywhere);
* :class:`TraceStore` (:mod:`.store`) — schema-versioned, checksummed
  binary serialization and a content-addressed on-disk cache keyed by
  (design fingerprint, params, executor, schema version), so repeat
  ``Session``/CLI/DSE invocations skip recapture across processes.

Every OmniSim run attaches an artifact (``result.trace``);
``Session(trace_cache=…)`` / ``repro … --trace-cache`` /
``REPRO_TRACE_CACHE`` turn on the disk cache; ``repro trace
info|verify|gc`` manage it.
"""

from .columnar import CONSTRAINT_KINDS, TraceArtifact, replay_trace
from .vectorized import (
    DEFAULT_BATCH_SIZE,
    batch_supported,
    numpy_available,
    resimulate_batch,
    retime_batch,
)
from .store import (
    ENV_VAR,
    SCHEMA_VERSION,
    CacheEntry,
    TraceStore,
    artifact_digest,
    default_cache_dir,
    design_fingerprint,
    dumps_artifact,
    loads_artifact,
    resolve_store,
)

__all__ = [
    "CONSTRAINT_KINDS",
    "CacheEntry",
    "DEFAULT_BATCH_SIZE",
    "ENV_VAR",
    "SCHEMA_VERSION",
    "TraceArtifact",
    "TraceStore",
    "artifact_digest",
    "batch_supported",
    "default_cache_dir",
    "design_fingerprint",
    "dumps_artifact",
    "loads_artifact",
    "numpy_available",
    "replay_trace",
    "resimulate_batch",
    "resolve_store",
    "retime_batch",
]
