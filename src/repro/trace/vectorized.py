"""Vectorized batch retiming: whole depth-config batches as matrix sweeps.

The columnar :class:`~repro.trace.TraceArtifact` (PR 5) made the trace a
struct-of-arrays object, but ``retime``/``resimulate`` still interpret
it one configuration at a time in pure Python.  This module is the
LightningSimV2 move applied to that loop: *compile* the trace graph into
a level-synchronous batch plan once, then evaluate a whole
``(configs x fifos)`` depth matrix as NumPy array ops over a
``(nodes x configs)`` time matrix — one vectorized relaxation sweep per
topological level instead of N independent graph walks.

How the plan is laid out (DESIGN.md section 16):

* **Levels.**  Every node gets its longest-path level in the graph of
  static edges plus the depth-1 WAR edges (``reads[i] -> writes[i+1]``).
  Depth-1 WAR edges are the most constraining — the WAR edge for depth
  ``d`` (``reads[i] -> writes[i+d]``) is implied by the depth-1 edge and
  the write port chain — so one leveling is valid for *every* depth
  configuration >= 1, exactly like the artifact's all-depth topological
  order (whose existence the plan requires).
* **Renumbering.**  Nodes are permuted level-major so each level's
  destinations are contiguous rows of the time matrix ``T`` (shape
  ``(total_nodes, batch)``): the static relaxation for one level is a
  gather (``T[pred_src] + weight``), a segmented
  ``np.maximum.reduceat`` per destination, and one scatter-max.
* **WAR overlay.**  The depth-dependent edges target only FIFO write
  nodes and always have weight 1, but their *source* read varies per
  config (``reads[i - depth]``).  Per level and FIFO the plan stores the
  write positions; the sweep computes the per-config source index
  matrix, gathers ``T[reads[i - d], config]`` element-wise, and
  scatter-maxes the candidates into the write rows — invalid positions
  (``i < d``) contribute ``-inf``.
* **Constraints.**  The recorded Table 2 queries re-validate as matrix
  ops per FIFO: write-side queries gather the per-config freeing read
  (index ``i - d`` again), read-side queries have a fixed target write.
  A flipped query marks *that config's row* only.

:func:`resimulate_batch` is the public kernel entry: it returns one
:class:`~repro.sim.incremental.IncrementalResult` per config row, or
``None`` for rows it cannot serve — a flipped constraint, an invalid
depth, an unknown FIFO name, or a whole-batch downgrade (NumPy missing,
no all-depth order).  Callers re-run ``None`` rows through the scalar
``TraceArtifact.resimulate`` path, which produces the *identical*
result or exception — the scalar path stays in the tree as the
bit-for-bit differential oracle (``tests/test_vectorized.py``), exactly
as ``resimulate_object`` backs the columnar path.

NumPy is optional: without it every batch degrades to the scalar path
(``numpy_available()`` reports which mode is active, and the
``REPRO_NO_NUMPY`` environment variable forces the fallback for
testing).
"""

from __future__ import annotations

import os as _os
import time as _time

from ..sim.graph import K_WRITE
from ..sim.incremental import IncrementalResult
from .columnar import _NEG_INF, TraceArtifact

try:  # pragma: no cover - exercised via the no-numpy CI job
    if _os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: default rows per vectorized kernel call.  Large enough that per-level
#: NumPy call overhead amortizes across the batch (the sweep runs one
#: gather/reduceat/scatter trio per topological level regardless of
#: batch width), small enough that the (nodes x batch) int64 time
#: matrix stays cache-friendly.
DEFAULT_BATCH_SIZE = 256


def numpy_available() -> bool:
    """True when the vectorized kernel can run (NumPy importable and
    not disabled via ``REPRO_NO_NUMPY``)."""
    return _np is not None


class BatchPlan:
    """The compiled, level-synchronous form of one trace artifact.

    Built once per artifact (cached on the artifact, never pickled) and
    reused by every :func:`resimulate_batch` call.  ``supported`` is
    False when the artifact has no all-depth topological order — the
    order's existence is what lets the sweep skip per-config cycle
    checks, so such artifacts stay on the scalar path.
    """

    __slots__ = (
        "supported", "total", "node_count", "perm", "dtype", "neg",
        "base", "levels", "war_levels", "fifo_names", "fifo_index",
        "reads_new", "reads_ext", "writes_len", "reads_len",
        "min_safe_depth", "max_ke", "max_kd", "max_kw", "real_new",
        "w_queries", "r_queries", "end_new", "end_names", "n_constraints",
    )

    def __init__(self, art: TraceArtifact):
        self.supported = False
        if _np is None:
            return
        art.ensure_static()
        if not art.s_has_order:
            return
        np = _np
        total = art.s_total
        self.total = total
        self.node_count = art.node_count

        # --- levels: longest path over static + depth-1 WAR edges ------
        level = [0] * total
        aug: dict[int, list[int]] = {}
        for fc in art.fifos:
            writes = fc.write_nodes
            for r, read_node in enumerate(fc.read_nodes, start=1):
                if r < len(writes):
                    aug.setdefault(read_node, []).append(writes[r])
        succ_ptr = art.s_succ_ptr
        succ_node = art.s_succ_node
        aug_get = aug.get
        for u in art.s_order:
            nxt = level[u] + 1
            for k in range(succ_ptr[u], succ_ptr[u + 1]):
                v = succ_node[k]
                if level[v] < nxt:
                    level[v] = nxt
            extra = aug_get(u)
            if extra is not None:
                for v in extra:
                    if level[v] < nxt:
                        level[v] = nxt

        # --- level-major renumbering ------------------------------------
        level_arr = np.asarray(level, dtype=np.int64)
        order_new = np.argsort(level_arr, kind="stable")
        perm = np.empty(total, dtype=np.int64)
        perm[order_new] = np.arange(total, dtype=np.int64)
        self.perm = perm
        base_i64 = np.asarray(art.s_base, dtype=np.int64)[order_new]
        self.real_new = perm[:self.node_count] if self.node_count \
            else np.empty(0, dtype=np.int64)

        # --- value dtype: int32 when the longest possible path fits ----
        # Candidate values are bounded by max finite |base| plus the sum
        # of positive edge weights (every WAR edge contributes 1).  The
        # int32 layout halves the sweep's memory traffic; 2x headroom
        # keeps sentinel-derived candidates strictly below any real one
        # (mirroring how ``_NEG_INF`` chains always lose in the scalar
        # sweep).
        edge_w64 = np.asarray(art.s_succ_weight, dtype=np.int64)
        finite = base_i64 > _NEG_INF // 2
        bound = int(np.abs(base_i64[finite]).max(initial=0))
        bound += int(edge_w64[edge_w64 > 0].sum())
        bound += sum(len(fc.write_nodes) for fc in art.fifos)
        if bound < (1 << 29):
            self.dtype = np.int32
            self.neg = -(1 << 30)
        else:
            self.dtype = np.int64
            self.neg = _NEG_INF
        self.base = np.where(finite, base_i64, self.neg).astype(self.dtype)

        # --- per-level static predecessor groups (new numbering) --------
        # One self-loop of weight 0 per destination folds the node's
        # base value into its segmented reduction, so the sweep's scatter
        # can overwrite instead of read-max-write.
        src = np.asarray(art.s_succ_node, dtype=np.int64)  # edge dsts
        n_edges = len(src)
        edge_src_old = np.empty(n_edges, dtype=np.int64)
        ptr = list(art.s_succ_ptr)
        for u in range(total):
            edge_src_old[ptr[u]:ptr[u + 1]] = u
        dst_all = np.unique(perm[src])
        edge_dst_new = np.concatenate([perm[src], dst_all])
        edge_src_new = np.concatenate([perm[edge_src_old], dst_all])
        edge_w = np.concatenate(
            [edge_w64, np.zeros(len(dst_all), dtype=np.int64)]
        ).astype(self.dtype)
        n_edges += len(dst_all)
        # sort edges by destination (new ids are level-major, so one
        # stable sort groups them level-by-level AND dst-by-dst)
        e_order = np.argsort(edge_dst_new, kind="stable")
        edge_dst_new = edge_dst_new[e_order]
        edge_src_new = edge_src_new[e_order]
        edge_w = edge_w[e_order][:, None]  # broadcast-ready column
        dst_unique, seg_starts = np.unique(edge_dst_new,
                                           return_index=True)
        dst_level = level_arr[order_new][dst_unique]
        n_levels = int(level_arr.max()) + 1 if total else 1
        # slice the grouped-destination arrays by level
        lvl_bounds = np.searchsorted(dst_level,
                                     np.arange(1, n_levels + 1))
        self.levels = []
        self.max_ke = self.max_kd = 0
        prev_d = int(np.searchsorted(dst_level, 1))
        prev_e = int(seg_starts[prev_d]) if prev_d < len(dst_unique) else n_edges
        for L in range(1, n_levels):
            d_hi = int(lvl_bounds[L])
            e_hi = (int(seg_starts[d_hi]) if d_hi < len(dst_unique)
                    else n_edges)
            if d_hi > prev_d:
                self.levels.append((
                    dst_unique[prev_d:d_hi],
                    seg_starts[prev_d:d_hi] - prev_e,
                    edge_src_new[prev_e:e_hi],
                    edge_w[prev_e:e_hi],
                ))
                self.max_ke = max(self.max_ke, e_hi - prev_e)
                self.max_kd = max(self.max_kd, d_hi - prev_d)
            else:
                self.levels.append(None)
            prev_d, prev_e = d_hi, e_hi

        # --- per-level WAR write groups ---------------------------------
        kind = art.kind
        self.fifo_names = [fc.name for fc in art.fifos]
        self.fifo_index = {name: i for i, name in
                           enumerate(self.fifo_names)}
        self.reads_new = [perm[np.asarray(fc.read_nodes, dtype=np.int64)]
                          if len(fc.read_nodes) else
                          np.empty(0, dtype=np.int64)
                          for fc in art.fifos]
        # sentinel-padded variant: index -1 wraps to row ``total`` of the
        # time matrix, which the sweep pins at ``neg`` — an invalid WAR
        # source (``pos < depth``) then contributes a candidate that
        # always loses, with no mask/where pass.
        self.reads_ext = [
            np.concatenate([r, np.asarray([total], dtype=np.int64)])
            for r in self.reads_new
        ]
        self.writes_len = [len(fc.write_nodes) for fc in art.fifos]
        self.reads_len = [len(fc.read_nodes) for fc in art.fifos]
        war_levels: dict[int, list] = {}
        # Minimum depth per FIFO at which every WAR source index
        # (``pos - depth``) stays inside the recorded read list — the
        # scalar overlay indexes ``reads[w - depth - 1]`` unguarded, so
        # rows below this are screened out to the scalar path rather
        # than replicated here.
        self.min_safe_depth = np.ones(len(art.fifos), dtype=np.int64)
        for fi, fc in enumerate(art.fifos):
            pos_ok = [i for i, w in enumerate(fc.write_nodes)
                      if kind[w] == K_WRITE]
            if not pos_ok:
                continue
            self.min_safe_depth[fi] = max(
                1, max(pos_ok) - len(fc.read_nodes) + 1
            )
            by_level: dict[int, list[int]] = {}
            for i in pos_ok:
                by_level.setdefault(level[fc.write_nodes[i]], []).append(i)
            for L, positions in by_level.items():
                pos_col = np.asarray(positions, dtype=np.int64)[:, None]
                dst = perm[np.asarray(
                    [fc.write_nodes[i] for i in positions],
                    dtype=np.int64)]
                war_levels.setdefault(L, []).append((fi, pos_col, dst))
        self.war_levels = war_levels
        self.max_kw = max(
            (grp[1].shape[0] for groups in war_levels.values()
             for grp in groups), default=0,
        )

        # --- constraint groups (Table 2 re-validation) ------------------
        c_kind = np.asarray(art.c_kind, dtype=np.int64)
        c_fifo = np.asarray(art.c_fifo, dtype=np.int64)
        c_index = np.asarray(art.c_index, dtype=np.int64)
        c_outcome = np.asarray(art.c_outcome, dtype=bool)
        c_node = np.asarray(art.c_node, dtype=np.int64)
        self.n_constraints = len(c_node)
        is_write_q = c_kind <= 1  # see columnar._WRITE_QUERY_MAX_CODE
        self.w_queries = []
        for fi, fc in enumerate(art.fifos):
            mask = is_write_q & (c_fifo == fi)
            if not mask.any():
                continue
            self.w_queries.append((
                fi,
                c_index[mask],
                perm[c_node[mask]],
                c_outcome[mask],
            ))
        self.r_queries = []
        for fi, fc in enumerate(art.fifos):
            mask = (~is_write_q) & (c_fifo == fi)
            if not mask.any():
                continue
            idx = c_index[mask]
            n_writes = len(fc.write_nodes)
            has_write = idx <= n_writes
            writes = np.asarray(fc.write_nodes, dtype=np.int64)
            tgt = perm[writes[np.clip(idx - 1, 0, max(n_writes - 1, 0))]] \
                if n_writes else np.zeros(len(idx), dtype=np.int64)
            self.r_queries.append((
                tgt, has_write, perm[c_node[mask]], c_outcome[mask],
            ))

        # --- aggregates --------------------------------------------------
        self.end_new = perm[np.asarray(art.end_node_ids, dtype=np.int64)] \
            if len(art.end_node_ids) else np.empty(0, dtype=np.int64)
        self.end_names = [art.module_names[mid] for mid in art.end_mids]
        self.supported = True

    # ------------------------------------------------------------------

    def retime_matrix(self, depth_matrix):
        """Longest-path times for a ``(batch x n_fifos)`` depth matrix.

        ``depth_matrix`` columns follow :attr:`fifo_names` order; every
        depth must satisfy :attr:`min_safe_depth` (the caller screens
        rows).  Returns the ``(total_nodes + 1 x batch)`` time matrix in
        *plan* (level-major) numbering — index it through :attr:`perm`;
        the extra last row is the ``neg`` sentinel.

        The sweep is overhead-bound on deep graphs (one short level per
        chained FIFO access), so every per-level step writes into
        preallocated scratch via ``out=``: gather static predecessors,
        add weights, one segmented ``maximum.reduceat`` per destination
        (the self-loop row carries the node's base), scatter; then for
        WAR groups a flat-index gather through the sentinel-padded read
        list and a scatter-max into the write rows.
        """
        np = _np
        D = np.asarray(depth_matrix, dtype=np.int64)
        batch = D.shape[0]
        T = np.empty((self.total + 1, batch), dtype=self.dtype)
        T[:self.total] = self.base[:, None]
        T[self.total] = self.neg
        T_flat = T.reshape(-1)
        cols = np.arange(batch, dtype=np.int64)
        reads_lin = [r * batch for r in self.reads_ext]
        cand_buf = np.empty((self.max_ke, batch), dtype=self.dtype)
        red_buf = np.empty((self.max_kd, batch), dtype=self.dtype)
        idx_buf = np.empty((self.max_kw, batch), dtype=np.int64)
        war_buf = np.empty((self.max_kw, batch), dtype=self.dtype)
        old_buf = np.empty((self.max_kw, batch), dtype=self.dtype)
        war_levels = self.war_levels
        for L, static in enumerate(self.levels, start=1):
            if static is not None:
                dst, seg, src, w = static
                cand = cand_buf[:len(src)]
                np.take(T, src, axis=0, out=cand)
                cand += w
                red = red_buf[:len(dst)]
                np.maximum.reduceat(cand, seg, axis=0, out=red)
                T[dst] = red
            war = war_levels.get(L)
            if war is not None:
                for fi, pos_col, dst in war:
                    k = pos_col.shape[0]
                    idx = idx_buf[:k]
                    np.subtract(pos_col, D[:, fi], out=idx)
                    np.maximum(idx, -1, out=idx)  # -1 wraps to sentinel
                    np.take(reads_lin[fi], idx, mode="wrap", out=idx)
                    idx += cols
                    gathered = war_buf[:k]
                    np.take(T_flat, idx, out=gathered)
                    gathered += 1
                    old = old_buf[:k]
                    np.take(T, dst, axis=0, out=old)
                    np.maximum(old, gathered, out=old)
                    T[dst] = old
        return T

    def flipped_rows(self, T, depth_matrix):
        """Boolean ``(batch,)`` mask of configs where any recorded
        query would resolve differently (columnar Table 2 conditions,
        vectorized)."""
        np = _np
        D = np.asarray(depth_matrix, dtype=np.int64)
        batch = D.shape[0]
        flip = np.zeros(batch, dtype=bool)
        cols = np.arange(batch, dtype=np.int64)
        for fi, idx, src_new, recorded in self.w_queries:
            d = D[:, fi]
            source = T[src_new]                        # (k, batch)
            sat = idx[:, None] <= d[None, :]
            target = idx[:, None] - d[None, :]
            n_reads = self.reads_len[fi]
            inrange = (target >= 1) & (target <= n_reads)
            if n_reads:
                reads = self.reads_new[fi]
                gathered = T[reads[np.clip(target - 1, 0, n_reads - 1)],
                             cols[None, :]]
                outcome = sat | (inrange & (source > gathered))
            else:
                outcome = sat
            flip |= (outcome != recorded[:, None]).any(axis=0)
        for tgt, has_write, src_new, recorded in self.r_queries:
            outcome = has_write[:, None] & (T[src_new] > T[tgt])
            flip |= (outcome != recorded[:, None]).any(axis=0)
        return flip

    def cycles(self, T):
        """Per-config total cycles: ``(batch,)`` int64."""
        np = _np
        if len(self.end_new):
            return T[self.end_new].max(axis=0)
        if self.node_count:
            # mirror total_cycles(): max over *real* nodes only
            return T[self.real_new].max(axis=0)
        return np.zeros(T.shape[1], dtype=np.int64)


def _plan_for(art: TraceArtifact) -> BatchPlan:
    """The artifact's cached batch plan (built on first use; the cache
    rides on the artifact object and is dropped by pickling, like the
    scalar iteration view)."""
    plan = getattr(art, "_vplan", None)
    if plan is None:
        plan = BatchPlan(art)
        try:
            art._vplan = plan
        except AttributeError:  # pragma: no cover - exotic artifacts
            pass
    return plan


def batch_supported(art: TraceArtifact) -> bool:
    """True when ``art`` can be served by the vectorized kernel."""
    return _np is not None and _plan_for(art).supported


def resimulate_batch(art: TraceArtifact, configs,
                     ) -> list[IncrementalResult | None]:
    """Batched :meth:`TraceArtifact.resimulate` over many depth configs.

    ``configs`` is a sequence of depth-override dicts (unmentioned FIFOs
    keep the capture depth, exactly like the scalar path).  Returns one
    entry per config:

    * an :class:`~repro.sim.incremental.IncrementalResult` — bit-for-bit
      what ``art.resimulate(config)`` would return — when the row's
      recorded queries all re-validate;
    * ``None`` when the row must take the scalar path: a recorded query
      flipped (``ConstraintViolation``), the depths are invalid
      (unknown name / depth < 1 -> ``SimulationError``), or the whole
      batch is unservable (NumPy unavailable, no all-depth order).
      Re-running the row through ``art.resimulate`` reproduces the
      identical result or exception.

    ``seconds`` on returned results is the batch wall-clock amortized
    over its rows (the scalar path times each row individually).
    """
    configs = list(configs)
    if not configs:
        return []
    if _np is None:
        return [None] * len(configs)
    plan = _plan_for(art)
    if not plan.supported:
        return [None] * len(configs)
    np = _np
    start = _time.perf_counter()

    known = set(art.depths)
    full_depths: list[dict | None] = []
    for config in configs:
        if set(config) - known:
            full_depths.append(None)  # unknown FIFO name -> scalar error
            continue
        depths = dict(art.depths)
        depths.update(config)
        if any(d < 1 for d in depths.values()):
            full_depths.append(None)  # bad depth -> scalar error
            continue
        full_depths.append(depths)

    rows = [i for i, d in enumerate(full_depths) if d is not None]
    results: list[IncrementalResult | None] = [None] * len(configs)
    if not rows:
        return results

    D = np.empty((len(rows), len(plan.fifo_names)), dtype=np.int64)
    for r, i in enumerate(rows):
        depths = full_depths[i]
        for c, name in enumerate(plan.fifo_names):
            D[r, c] = depths[name]

    safe = (D >= plan.min_safe_depth[None, :]).all(axis=1)
    if not safe.all():
        rows = [i for r, i in enumerate(rows) if safe[r]]
        if not rows:
            return results
        D = D[safe]

    T = plan.retime_matrix(D)
    flip = plan.flipped_rows(T, D)
    cycles = plan.cycles(T)
    end_rows = T[plan.end_new]  # (n_modules, batch)

    seconds = (_time.perf_counter() - start) / len(rows)
    for r, i in enumerate(rows):
        if flip[r]:
            continue  # ConstraintViolation row: scalar path re-raises
        depths = full_depths[i]
        end_times = {name: int(end_rows[m, r])
                     for m, name in enumerate(plan.end_names)}
        results[i] = IncrementalResult(
            cycles=int(cycles[r]),
            seconds=seconds,
            depths=depths,
            constraints_checked=plan.n_constraints,
            module_end_times=end_times,
            buffer_bits=art.buffer_bits(depths),
        )
    return results


def retime_batch(art: TraceArtifact, depth_maps) -> list[list[int]]:
    """Batched :meth:`TraceArtifact.retime`: per-config node time lists
    (real nodes, artifact numbering) for fully-resolved depth maps.

    Exposed for differential tests and benchmarks; sweeps should prefer
    :func:`resimulate_batch`.  Raises :class:`ValueError` when the
    kernel cannot serve the artifact (use :func:`batch_supported`).
    """
    depth_maps = list(depth_maps)
    if _np is None:
        raise ValueError("NumPy unavailable: vectorized retime disabled")
    plan = _plan_for(art)
    if not plan.supported:
        raise ValueError(
            "artifact has no all-depth topological order; "
            "use the scalar TraceArtifact.retime path"
        )
    if not depth_maps:
        return []
    np = _np
    D = np.empty((len(depth_maps), len(plan.fifo_names)), dtype=np.int64)
    for r, depths in enumerate(depth_maps):
        for c, name in enumerate(plan.fifo_names):
            D[r, c] = depths[name]
    if not (D >= plan.min_safe_depth[None, :]).all():
        raise ValueError(
            "depth map indexes past the recorded read list; "
            "use the scalar TraceArtifact.retime path"
        )
    T = plan.retime_matrix(D)
    back = T[plan.perm[:plan.node_count]]  # artifact numbering
    return [back[:, r].tolist() for r in range(len(depth_maps))]
