"""Columnar trace artifact: capture once, resimulate anywhere.

OmniSim's premise is "capture at C speed, resimulate at RTL accuracy" —
which makes the captured trace the central artifact of the whole system.
Before this module it was an ad-hoc object graph
(:class:`~repro.sim.graph.SimulationGraph` + a list of
:class:`~repro.sim.result.Constraint` dataclasses + the FIFO channel
tables) whose derived CSR static-edge cache was dropped on every pickle
and rebuilt per pool-worker chunk, and every process recaptured from
scratch.

:class:`TraceArtifact` promotes the trace to a first-class, flat,
struct-of-arrays object (the LightningSimV2/GSIM move: dense packed
state instead of per-node Python objects):

* **node columns** — ``module_of``/``nominal``/``time``/``kind``/
  ``seg_serial``/``seg_base`` as ``array('q')``, plus a CSR view of the
  per-module node lists;
* **FIFO / AXI columns** — the graph-node registries flattened to
  integer arrays per channel, with the base depth and element width per
  FIFO;
* **constraint columns** — every recorded timing query as five parallel
  arrays (kind code, FIFO index, access index, outcome, node id);
* **static columns** — the depth-independent retiming edges in CSR form
  (``succ_ptr``/``succ_node``/``succ_weight``) plus the all-depth
  topological order, built once and *kept through pickling and
  serialization* (unlike the graph's cache), so pool workers and
  cache-warm processes never rebuild them;
* **functional payload** — scalars/buffers/AXI memories/stats of the
  capture run, so a cache-loaded artifact can stand in for the full
  baseline :class:`~repro.sim.result.SimulationResult`.

The columnar ``retime``/``resimulate`` here are bit-for-bit equivalent
to the object-graph path (``SimulationGraph.retime`` +
``repro.sim.incremental.resimulate_object``), which is kept as the
differential oracle — the same pattern PR 1 used for the interpreter vs
the closure-compiled executor.  ``tests/test_trace_artifact.py`` asserts
the equivalence on every registry design under both executors.

Serialization (schema-versioned binary format, checksum, on-disk
content-addressed cache) lives in :mod:`repro.trace.store`.
"""

from __future__ import annotations

import time as _time
from array import array
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConstraintViolation, SimulationError
from ..sim.graph import K_READ, K_WRITE
from ..sim.incremental import IncrementalResult
from ..sim.result import Constraint, SimulationResult, SimulationStats

#: constraint kind <-> small-int code for the constraint columns.
#: Codes 0-1 are the write-side queries (paper Table 2 left column);
#: codes 2-3 the read-side ones.  Order is part of the on-disk schema.
CONSTRAINT_KINDS = (
    "fifo_nb_write", "fifo_can_write", "fifo_nb_read", "fifo_can_read",
)
_KIND_CODE = {kind: code for code, kind in enumerate(CONSTRAINT_KINDS)}
_WRITE_QUERY_MAX_CODE = 1

#: default element width (bits) for FIFOs absent from the width table
#: (hand-built graphs) — must match ``SimulationGraph.buffer_bits``.
DEFAULT_FIFO_WIDTH = 32

_NEG_INF = -(1 << 62)


def _qarray(values=()) -> array:
    return array("q", values)


@dataclass
class FifoColumns:
    """One FIFO's committed accesses, flattened to node-id arrays."""

    name: str
    #: base depth of the capture run (the reference configuration)
    depth: int
    #: element width in bits (buffer-cost estimates)
    width: int = DEFAULT_FIFO_WIDTH
    #: successful accesses in index order (RAW/WAR edges)
    write_nodes: array = field(default_factory=_qarray)
    read_nodes: array = field(default_factory=_qarray)
    #: every port access incl. failed NB attempts (+1 serialization)
    write_port_nodes: array = field(default_factory=_qarray)
    read_port_nodes: array = field(default_factory=_qarray)


@dataclass
class AxiColumns:
    """One AXI port's committed events, flattened to node-id arrays."""

    name: str
    read_latency: int = 12
    write_latency: int = 6
    #: flattened ``(req_node, first_beat, length)`` triples
    read_bursts: array = field(default_factory=_qarray)
    #: flattened ``(resp_node, last_beat)`` pairs
    resp_nodes: array = field(default_factory=_qarray)
    read_beat_nodes: array = field(default_factory=_qarray)
    write_beat_nodes: array = field(default_factory=_qarray)
    read_req_nodes: array = field(default_factory=_qarray)
    write_req_nodes: array = field(default_factory=_qarray)


class TraceArtifact:
    """Flat, picklable, serializable form of one captured OmniSim run."""

    def __init__(self, design_name: str, executor: str):
        self.design_name = design_name
        #: Func Sim executor of the capture run (part of the cache key)
        self.executor = executor
        # -- node columns ----------------------------------------------
        self.module_of = _qarray()
        self.nominal = _qarray()
        self.time = _qarray()
        self.kind = _qarray()
        self.seg_serial = _qarray()
        self.seg_base = _qarray()
        self.module_names: list[str] = []
        #: CSR of per-module node lists (module id -> node ids)
        self.mod_ptr = _qarray([0])
        self.mod_nodes = _qarray()
        #: end-task node per module, as parallel (mid, node) arrays
        self.end_mids = _qarray()
        self.end_node_ids = _qarray()
        # -- channel columns -------------------------------------------
        self.fifos: list[FifoColumns] = []
        self.axis: list[AxiColumns] = []
        #: full base depth map of the capture run — every declared FIFO,
        #: including ones that recorded no accesses
        self.depths: dict[str, int] = {}
        self.widths: dict[str, int] = {}
        # -- constraint columns ----------------------------------------
        self.c_kind = _qarray()
        self.c_fifo = _qarray()
        self.c_index = _qarray()
        self.c_outcome = _qarray()
        self.c_node = _qarray()
        # -- functional payload ----------------------------------------
        self.scalars: dict = {}
        self.buffers: dict = {}
        self.axi_memories: dict = {}
        self.fifo_leftovers: dict = {}
        self.warnings: list = []
        self.stats: dict = {}
        # -- static columns (depth-independent retiming edges) ---------
        #: real + virtual (segment-end) node count; None = not built
        self.s_total: int | None = None
        self.s_base: array | None = None
        self.s_indegree: array | None = None
        self.s_succ_ptr: array | None = None
        self.s_succ_node: array | None = None
        self.s_succ_weight: array | None = None
        #: topological order valid for every depth configuration >= 1,
        #: or None when the depth-1 ordering graph is cyclic
        self.s_order: array | None = None
        self.s_has_order = False
        #: derived iteration view (lists/tuples) — never serialized
        self._view = None

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def from_result(cls, result: SimulationResult,
                    executor: str = "compiled") -> "TraceArtifact":
        """Build the columnar artifact from a captured OmniSim result
        (graph + constraints + FIFO channels + functional outputs)."""
        graph = result.graph
        if graph is None or result.fifo_channels is None:
            raise SimulationError(
                "a trace artifact requires an OmniSim result (with graph "
                "and FIFO channels)"
            )
        art = cls(result.design_name, executor)
        art.module_of = _qarray(graph.module_of)
        art.nominal = _qarray(graph.nominal)
        art.time = _qarray(graph.time)
        art.kind = _qarray(graph.kind)
        art.seg_serial = _qarray(graph.seg_serial)
        art.seg_base = _qarray(graph.seg_base)
        art.module_names = list(graph.module_names)
        mod_ptr = [0]
        mod_nodes: list[int] = []
        for mid in range(len(graph.module_names)):
            mod_nodes.extend(graph.module_nodes.get(mid, ()))
            mod_ptr.append(len(mod_nodes))
        art.mod_ptr = _qarray(mod_ptr)
        art.mod_nodes = _qarray(mod_nodes)
        for mid, node in graph.end_nodes.items():
            art.end_mids.append(mid)
            art.end_node_ids.append(node)
        art.depths = {name: ch.depth
                      for name, ch in result.fifo_channels.items()}
        art.widths = dict(graph.fifo_widths)
        fifo_index: dict[str, int] = {}
        for name, table in graph.fifo_tables.items():
            fifo_index[name] = len(art.fifos)
            art.fifos.append(FifoColumns(
                name=name,
                depth=art.depths.get(name, 1),
                width=art.widths.get(name, DEFAULT_FIFO_WIDTH),
                write_nodes=_qarray(table.write_nodes),
                read_nodes=_qarray(table.read_nodes),
                write_port_nodes=_qarray(table.write_port_nodes),
                read_port_nodes=_qarray(table.read_port_nodes),
            ))
        for name, table in graph.axi_tables.items():
            bursts = _qarray()
            for req, first, length in table.read_bursts:
                bursts.extend((req, first, length))
            resp = _qarray()
            for node, last in table.resp_nodes:
                resp.extend((node, last))
            art.axis.append(AxiColumns(
                name=name,
                read_latency=table.read_latency,
                write_latency=table.write_latency,
                read_bursts=bursts,
                resp_nodes=resp,
                read_beat_nodes=_qarray(table.read_beat_nodes),
                write_beat_nodes=_qarray(table.write_beat_nodes),
                read_req_nodes=_qarray(table.read_req_nodes),
                write_req_nodes=_qarray(table.write_req_nodes),
            ))
        for c in result.constraints:
            art.c_kind.append(_KIND_CODE[c.kind])
            art.c_fifo.append(fifo_index[c.fifo])
            art.c_index.append(c.index)
            art.c_outcome.append(1 if c.outcome else 0)
            art.c_node.append(c.node_id)
        art.scalars = dict(result.scalars)
        art.buffers = {k: list(v) for k, v in result.buffers.items()}
        art.axi_memories = {k: list(v)
                            for k, v in result.axi_memories.items()}
        art.fifo_leftovers = dict(result.fifo_leftovers)
        art.warnings = list(result.warnings)
        stats = result.stats
        art.stats = {
            "events": stats.events,
            "queries": stats.queries,
            "queries_resolved_false_by_rule":
                stats.queries_resolved_false_by_rule,
            "instructions": stats.instructions,
            "blocks": stats.blocks,
        }
        return art

    # ------------------------------------------------------------------
    # cross-process shipping: static columns travel WITH the artifact
    # (the fix for SimulationGraph.__getstate__ dropping its cache);
    # only the cheap derived iteration view is rebuilt per process.

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_view"] = None
        # the vectorized batch plan (repro.trace.vectorized) holds NumPy
        # arrays and rebuilds cheaply; never ship it across processes
        state.pop("_vplan", None)
        return state

    # ------------------------------------------------------------------
    # basic shape

    @property
    def node_count(self) -> int:
        return len(self.time)

    def nbytes(self) -> int:
        """Approximate in-memory size of the integer columns (bytes)."""
        total = 0
        for _name, col in self.columns():
            total += len(col) * col.itemsize
        return total

    # ------------------------------------------------------------------
    # static edge build (columnar mirror of
    # SimulationGraph._build_static_edges / _build_order)

    def ensure_static(self) -> None:
        """Build the depth-independent CSR columns once (idempotent)."""
        if self.s_succ_ptr is None:
            self._build_static_columns()

    def _build_static_columns(self) -> None:
        n = self.node_count
        edges: list[tuple[int, int, int]] = []
        add_edge = edges.append
        base_value: list[int] = [0] * n
        next_virtual = n

        # --- structural edges per module -------------------------------
        nominal = self.nominal
        seg_serial = self.seg_serial
        seg_base = self.seg_base
        mod_ptr = self.mod_ptr
        mod_nodes = self.mod_nodes
        for mid in range(len(self.module_names)):
            prev_node = None
            prev_offset = 0
            prev_serial = None
            prev_base = 0
            segend = None
            for k in range(mod_ptr[mid], mod_ptr[mid + 1]):
                v = mod_nodes[k]
                offset = nominal[v] - seg_base[v]
                if prev_serial is None:
                    base_value[v] = nominal[v]
                    segend = next_virtual
                    next_virtual += 1
                    base_value.append(seg_base[v])
                elif seg_serial[v] != prev_serial:
                    delta = seg_base[v] - prev_base
                    new_segend = next_virtual
                    next_virtual += 1
                    base_value.append(_NEG_INF)
                    add_edge((segend, new_segend, delta))
                    add_edge((segend, v, delta + offset))
                    segend = new_segend
                else:
                    add_edge((prev_node, v, offset - prev_offset))
                add_edge((v, segend, -offset))
                prev_node, prev_offset = v, offset
                prev_serial = seg_serial[v]
                prev_base = seg_base[v]

        # --- depth-independent FIFO edges ------------------------------
        kind = self.kind
        for fc in self.fifos:
            writes = fc.write_nodes
            for r, read_node in enumerate(fc.read_nodes, start=1):
                if kind[read_node] == K_READ:
                    add_edge((writes[r - 1], read_node, 1))  # RAW
            for chain in (fc.write_port_nodes, fc.read_port_nodes):
                for a, b in zip(chain, chain[1:]):
                    add_edge((a, b, 1))

        # --- AXI edges --------------------------------------------------
        for ax in self.axis:
            beats = ax.read_beat_nodes
            bursts = ax.read_bursts
            for i in range(0, len(bursts), 3):
                req_node, first_beat, length = (
                    bursts[i], bursts[i + 1], bursts[i + 2]
                )
                for j in range(length):
                    beat_index = first_beat + j
                    if beat_index < len(beats):
                        add_edge((req_node, beats[beat_index],
                                  ax.read_latency + j))
            resp = ax.resp_nodes
            for i in range(0, len(resp), 2):
                add_edge((ax.write_beat_nodes[resp[i + 1]], resp[i],
                          ax.write_latency))
            for chain in (ax.read_beat_nodes, ax.write_beat_nodes,
                          ax.read_req_nodes, ax.write_req_nodes):
                for a, b in zip(chain, chain[1:]):
                    add_edge((a, b, 1))

        # --- flatten to CSR columns ------------------------------------
        total = next_virtual
        counts = [0] * (total + 1)
        indegree = [0] * total
        for u, v, _w in edges:
            counts[u + 1] += 1
            indegree[v] += 1
        succ_ptr = counts
        for i in range(1, total + 1):
            succ_ptr[i] += succ_ptr[i - 1]
        succ_node = [0] * len(edges)
        succ_weight = [0] * len(edges)
        cursor = succ_ptr[:-1].copy()
        for u, v, w in edges:
            k = cursor[u]
            succ_node[k] = v
            succ_weight[k] = w
            cursor[u] = k + 1

        self.s_total = total
        self.s_base = _qarray(base_value)
        self.s_indegree = _qarray(indegree)
        self.s_succ_ptr = _qarray(succ_ptr)
        self.s_succ_node = _qarray(succ_node)
        self.s_succ_weight = _qarray(succ_weight)
        order = self._build_order_column()
        self.s_has_order = order is not None
        self.s_order = _qarray(order) if order is not None else _qarray()
        self._view = None

    def _build_order_column(self) -> list | None:
        """All-depth topological order (see
        ``SimulationGraph._build_order`` for the soundness argument)."""
        total = self.s_total
        indegree = list(self.s_indegree)
        aug: dict[int, list[int]] = {}
        for fc in self.fifos:
            writes = fc.write_nodes
            for r, read_node in enumerate(fc.read_nodes, start=1):
                if r < len(writes):
                    aug.setdefault(read_node, []).append(writes[r])
                    indegree[writes[r]] += 1
        succ_ptr = self.s_succ_ptr
        succ_node = self.s_succ_node
        aug_get = aug.get
        order: list[int] = []
        queue = deque(v for v in range(total) if indegree[v] == 0)
        while queue:
            u = queue.popleft()
            order.append(u)
            for k in range(succ_ptr[u], succ_ptr[u + 1]):
                v = succ_node[k]
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
            extra = aug_get(u)
            if extra is not None:
                for v in extra:
                    indegree[v] -= 1
                    if indegree[v] == 0:
                        queue.append(v)
        return order if len(order) == total else None

    # ------------------------------------------------------------------
    # derived iteration view: the CSR columns are the persistent form;
    # the relaxation loop wants per-node adjacency tuples (PR 1's
    # iteration-friendly shape).  Rebuilt per process from the columns —
    # a zip + slicing pass, orders cheaper than the full edge build.

    def _iter_view(self):
        view = self._view
        if view is None:
            self.ensure_static()
            succ_ptr = self.s_succ_ptr
            # Box the columns into lists before zipping: the pair
            # tuples then hold compactly-allocated ints (boxing straight
            # out of array('q') measurably hurts sweep locality).
            pairs_flat = list(zip(list(self.s_succ_node),
                                  list(self.s_succ_weight)))
            succ_pairs = [
                tuple(pairs_flat[succ_ptr[u]:succ_ptr[u + 1]])
                for u in range(self.s_total)
            ]
            base = list(self.s_base)
            indegree = list(self.s_indegree)
            if self.s_has_order:
                # Only overlay-eligible nodes (successful FIFO reads —
                # the only possible WAR edge sources) must appear in the
                # sweep even with no static successors; everything else
                # with an empty adjacency relaxes nothing and is skipped.
                may_overlay = set()
                for fc in self.fifos:
                    may_overlay.update(fc.read_nodes)
                sweep = [
                    (u, succ_pairs[u]) for u in self.s_order
                    if succ_pairs[u] or u in may_overlay
                ]
            else:
                sweep = None
            # Hot-loop list views: indexing an array('q') boxes a fresh
            # int per access; the WAR-overlay loop indexes the kind and
            # FIFO node columns per write, so it iterates plain lists.
            kind_list = list(self.kind)
            fifo_views = [
                (fc.name, list(fc.write_nodes), list(fc.read_nodes))
                for fc in self.fifos
            ]
            view = (sweep, succ_pairs, base, indegree, kind_list,
                    fifo_views)
            self._view = view
        return view

    # ------------------------------------------------------------------
    # retiming (columnar mirror of SimulationGraph.retime)

    def retime(self, depths: dict) -> list[int]:
        """Recompute all node times under new FIFO ``depths``.

        ``depths`` must be the fully resolved map (every FIFO with
        recorded accesses present).  Bit-for-bit equal to
        :meth:`repro.sim.graph.SimulationGraph.retime` on the same
        capture; returns the new time list for real nodes.
        """
        (sweep, succ_pairs, base, indegree_base, kind,
         fifo_views) = self._iter_view()
        total = self.s_total

        # --- per-depth WAR overlay: the only depth-dependent edges ------
        # A node-indexed list, not a dict: the sweep probes it once per
        # node, and a BINARY_SUBSCR beats a dict.get call on that path.
        overlay: list = [None] * total
        overlay_sources: list[int] = []
        sane_depths = True
        for name, writes, reads in fifo_views:
            depth = depths[name]
            if depth < 1:
                sane_depths = False
            for w in range(depth + 1, len(writes) + 1):
                write_node = writes[w - 1]
                if kind[write_node] == K_WRITE:
                    read_node = reads[w - depth - 1]  # frees the slot
                    targets = overlay[read_node]
                    if targets is None:
                        overlay[read_node] = [write_node]
                        overlay_sources.append(read_node)
                    else:
                        targets.append(write_node)

        new_time = base[:]

        if sweep is not None and sane_depths:
            # Fast path: one relaxation sweep over the precomputed
            # (node, adjacency) pairs — no indegree bookkeeping, no
            # queue, no cycle check (the order's existence proves every
            # configuration acyclic).
            for u, pairs in sweep:
                time_u = new_time[u]
                for v, w in pairs:
                    cand = time_u + w
                    if cand > new_time[v]:
                        new_time[v] = cand
                extra = overlay[u]
                if extra is not None:
                    cand = time_u + 1  # WAR edges always have weight 1
                    for v in extra:
                        if cand > new_time[v]:
                            new_time[v] = cand
            return new_time[:self.node_count]

        # --- Kahn longest-path fallback (order graph was cyclic) --------
        indegree = indegree_base[:]
        for u in overlay_sources:
            for v in overlay[u]:
                indegree[v] += 1
        queue = deque(v for v in range(total) if indegree[v] == 0)
        visited = 0
        while queue:
            u = queue.popleft()
            visited += 1
            time_u = new_time[u]
            for v, w in succ_pairs[u]:
                cand = time_u + w
                if cand > new_time[v]:
                    new_time[v] = cand
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
            extra = overlay[u]
            if extra is not None:
                cand = time_u + 1
                for v in extra:
                    if cand > new_time[v]:
                        new_time[v] = cand
                    indegree[v] -= 1
                    if indegree[v] == 0:
                        queue.append(v)
        if visited != total:
            raise SimulationError(
                "simulation graph became cyclic under the new FIFO depths "
                "(the configuration deadlocks); full re-simulation required"
            )
        return new_time[:self.node_count]

    # ------------------------------------------------------------------
    # incremental re-simulation (columnar mirror of
    # repro.sim.incremental.resimulate_object)

    def resimulate(self, new_depths: dict) -> IncrementalResult:
        """Re-derive the capture's cycle count under new FIFO depths.

        Semantics identical to the object path: unmentioned FIFOs keep
        the capture depth; raises
        :class:`~repro.errors.ConstraintViolation` when a recorded query
        flips, :class:`~repro.errors.SimulationError` on unknown names,
        depths < 1, or a configuration that deadlocks the recording.
        """
        start = _time.perf_counter()
        depths = dict(self.depths)
        unknown = set(new_depths) - set(depths)
        if unknown:
            raise SimulationError(
                f"unknown FIFO name(s): {sorted(unknown)}"
            )
        depths.update(new_depths)
        for name, depth in depths.items():
            if depth < 1:
                raise SimulationError(
                    f"fifo {name}: depth must be >= 1"
                )
        times = self.retime(depths)
        self._validate_constraints(times, depths)
        seconds = _time.perf_counter() - start
        return IncrementalResult(
            cycles=self.total_cycles(times),
            seconds=seconds,
            depths=depths,
            constraints_checked=len(self.c_node),
            module_end_times=self.end_times(times),
            buffer_bits=self.buffer_bits(depths),
        )

    def _validate_constraints(self, times: list, depths: dict) -> None:
        """Columnar Table 2 re-validation (iterates the constraint
        arrays instead of per-constraint dataclasses)."""
        kinds = self.c_kind
        fifo_ids = self.c_fifo
        indices = self.c_index
        outcomes = self.c_outcome
        nodes = self.c_node
        fifos = self.fifos
        for i in range(len(nodes)):
            fc = fifos[fifo_ids[i]]
            depth = depths[fc.name]
            source_time = times[nodes[i]]
            code = kinds[i]
            index = indices[i]
            if code <= _WRITE_QUERY_MAX_CODE:  # nb_write / can_write
                if index <= depth:
                    outcome = True
                else:
                    target = index - depth
                    if target <= len(fc.read_nodes):
                        outcome = source_time > times[fc.read_nodes[
                            target - 1]]
                    else:
                        outcome = False  # the freeing read never happened
            else:  # nb_read / can_read
                if index <= len(fc.write_nodes):
                    outcome = source_time > times[fc.write_nodes[
                        index - 1]]
                else:
                    outcome = False  # the awaited write never happened
            recorded = bool(outcomes[i])
            if outcome != recorded:
                kind = CONSTRAINT_KINDS[code]
                raise ConstraintViolation(
                    f"query {kind} on '{fc.name}' "
                    f"(access #{index}) resolved "
                    f"{recorded} in the recorded run but would "
                    f"resolve {outcome} with depths {depths}; full "
                    "re-simulation required",
                    query=Constraint(kind, fc.name, index, recorded,
                                     nodes[i]),
                    depths=depths,
                )

    # ------------------------------------------------------------------
    # aggregates

    def total_cycles(self, times=None) -> int:
        times = times if times is not None else self.time
        if not len(self.end_node_ids):
            return max(times, default=0)
        return max(times[v] for v in self.end_node_ids)

    def end_times(self, times=None) -> dict[str, int]:
        """Per-module end-of-task commit cycle under ``times``."""
        times = times if times is not None else self.time
        return {
            self.module_names[self.end_mids[i]]: times[self.end_node_ids[i]]
            for i in range(len(self.end_mids))
        }

    def buffer_bits(self, depths: dict,
                    default_width: int = DEFAULT_FIFO_WIDTH) -> int:
        """Total FIFO storage in bits under ``depths`` (depth x width)."""
        widths = self.widths
        return sum(
            depth * widths.get(name, default_width)
            for name, depth in depths.items()
        )

    # ------------------------------------------------------------------
    # interop with the object world

    def constraints_list(self) -> list[Constraint]:
        """Materialize the constraint columns back into
        :class:`~repro.sim.result.Constraint` objects."""
        fifos = self.fifos
        return [
            Constraint(CONSTRAINT_KINDS[self.c_kind[i]],
                       fifos[self.c_fifo[i]].name,
                       self.c_index[i],
                       bool(self.c_outcome[i]),
                       self.c_node[i])
            for i in range(len(self.c_node))
        ]

    def to_result(self) -> SimulationResult:
        """Reconstruct a baseline-equivalent
        :class:`~repro.sim.result.SimulationResult`: functional payload
        plus this artifact as the replay state.  There is no object
        graph, and ``fifo_channels`` holds depth-only stand-in channels
        (the documented ``{name: ch.depth}`` consumer pattern works;
        the per-access R/W timing tables live in the columns here)."""
        from ..runtime.fifo import FifoChannel

        return SimulationResult(
            design_name=self.design_name,
            simulator="omnisim",
            cycles=self.total_cycles(),
            scalars=dict(self.scalars),
            buffers={k: list(v) for k, v in self.buffers.items()},
            axi_memories={k: list(v) for k, v in self.axi_memories.items()},
            module_end_times=self.end_times(),
            fifo_leftovers=dict(self.fifo_leftovers),
            stats=SimulationStats(**self.stats),
            warnings=list(self.warnings),
            constraints=self.constraints_list(),
            fifo_channels={name: FifoChannel(name=name, depth=depth)
                           for name, depth in self.depths.items()},
            trace=self,
        )

    # ------------------------------------------------------------------
    # serialization support (the store flattens these; see store.py)

    def meta_dict(self) -> dict:
        """JSON-serializable scalar/str metadata (no integer columns)."""
        return {
            "design_name": self.design_name,
            "executor": self.executor,
            "module_names": list(self.module_names),
            "depths": dict(self.depths),
            "widths": dict(self.widths),
            "fifos": [
                {"name": fc.name, "depth": fc.depth, "width": fc.width}
                for fc in self.fifos
            ],
            "axis": [
                {"name": ax.name, "read_latency": ax.read_latency,
                 "write_latency": ax.write_latency}
                for ax in self.axis
            ],
            "functional": {
                "scalars": self.scalars,
                "buffers": self.buffers,
                "axi_memories": self.axi_memories,
                "fifo_leftovers": self.fifo_leftovers,
                "warnings": self.warnings,
                "stats": self.stats,
            },
            "static": {
                "built": self.s_succ_ptr is not None,
                "total": self.s_total,
                "has_order": self.s_has_order,
            },
        }

    _FIFO_COLUMNS = ("write_nodes", "read_nodes",
                     "write_port_nodes", "read_port_nodes")
    _AXI_COLUMNS = ("read_bursts", "resp_nodes", "read_beat_nodes",
                    "write_beat_nodes", "read_req_nodes", "write_req_nodes")
    _NODE_COLUMNS = ("module_of", "nominal", "time", "kind",
                     "seg_serial", "seg_base", "mod_ptr", "mod_nodes",
                     "end_mids", "end_node_ids")
    _CONSTRAINT_COLUMNS = ("c_kind", "c_fifo", "c_index",
                           "c_outcome", "c_node")
    _STATIC_COLUMNS = ("s_base", "s_indegree", "s_succ_ptr",
                       "s_succ_node", "s_succ_weight", "s_order")

    def columns(self):
        """Yield ``(name, array)`` for every integer column, in schema
        order (the store serializes exactly this sequence)."""
        for name in self._NODE_COLUMNS + self._CONSTRAINT_COLUMNS:
            yield name, getattr(self, name)
        for i, fc in enumerate(self.fifos):
            for col in self._FIFO_COLUMNS:
                yield f"fifo{i}.{col}", getattr(fc, col)
        for i, ax in enumerate(self.axis):
            for col in self._AXI_COLUMNS:
                yield f"axi{i}.{col}", getattr(ax, col)
        if self.s_succ_ptr is not None:
            for name in self._STATIC_COLUMNS:
                yield name, getattr(self, name)

    @classmethod
    def from_serial(cls, meta: dict, columns: dict) -> "TraceArtifact":
        """Inverse of ``meta_dict``/``columns`` (store load side)."""
        art = cls(meta["design_name"], meta["executor"])
        art.module_names = list(meta["module_names"])
        art.depths = {str(k): int(v) for k, v in meta["depths"].items()}
        art.widths = {str(k): int(v) for k, v in meta["widths"].items()}
        for name in cls._NODE_COLUMNS + cls._CONSTRAINT_COLUMNS:
            setattr(art, name, columns[name])
        for i, fd in enumerate(meta["fifos"]):
            art.fifos.append(FifoColumns(
                name=str(fd["name"]), depth=int(fd["depth"]),
                width=int(fd["width"]),
                **{col: columns[f"fifo{i}.{col}"]
                   for col in cls._FIFO_COLUMNS},
            ))
        for i, ad in enumerate(meta["axis"]):
            art.axis.append(AxiColumns(
                name=str(ad["name"]),
                read_latency=int(ad["read_latency"]),
                write_latency=int(ad["write_latency"]),
                **{col: columns[f"axi{i}.{col}"]
                   for col in cls._AXI_COLUMNS},
            ))
        fn = meta["functional"]
        art.scalars = dict(fn["scalars"])
        art.buffers = {k: list(v) for k, v in fn["buffers"].items()}
        art.axi_memories = {k: list(v)
                            for k, v in fn["axi_memories"].items()}
        art.fifo_leftovers = dict(fn["fifo_leftovers"])
        art.warnings = list(fn["warnings"])
        art.stats = dict(fn["stats"])
        static = meta["static"]
        if static["built"]:
            art.s_total = int(static["total"])
            art.s_has_order = bool(static["has_order"])
            for name in cls._STATIC_COLUMNS:
                setattr(art, name, columns[name])
            if not art.s_has_order:
                art.s_order = _qarray()
        return art

    def __repr__(self) -> str:
        return (f"TraceArtifact({self.design_name!r}, "
                f"executor={self.executor!r}, nodes={self.node_count}, "
                f"fifos={len(self.fifos)}, "
                f"constraints={len(self.c_node)}, "
                f"static={'built' if self.s_succ_ptr is not None else 'lazy'})")


def replay_trace(result, executor: str = "compiled"
                 ) -> TraceArtifact | None:
    """The columnar replay handle of a result.

    Returns ``result.trace`` when present; otherwise builds (and
    attaches) an artifact from the object graph when the result carries
    one, or ``None`` when the result has no replay state at all.  This
    lazy derivation is how capture "emits" the artifact: runs that never
    replay never pay the column build.  ``executor`` labels a
    newly-built artifact (cache-key relevant metadata; ignored when the
    artifact already exists).
    """
    trace = getattr(result, "trace", None)
    if trace is not None:
        return trace
    if getattr(result, "graph", None) is None:
        return None
    if getattr(result, "fifo_channels", None) is None:
        return None  # base depths unknown: cannot build a replay handle
    trace = TraceArtifact.from_result(result, executor=executor)
    result.trace = trace
    return trace
