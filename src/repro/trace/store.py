"""Versioned trace serialization + the content-addressed on-disk cache.

The binary format (one :class:`~repro.trace.columnar.TraceArtifact` per
file, extension ``.trace``)::

    magic   b"RTRC"                       (4 bytes)
    version u32 little-endian             (schema; see SCHEMA_VERSION)
    sha256  of everything after it        (32 bytes — corruption guard)
    hlen    u64 little-endian             (header length)
    header  JSON                          (meta + column manifest)
    payload raw little-endian int64 column bytes, manifest order

Every load verifies magic, schema version and checksum before touching
the payload; any mismatch raises :class:`~repro.errors.TraceFormatError`
and the cache treats the file as a miss (fresh capture with a warning —
a poisoned cache must never crash or serve stale data).

The cache itself (:class:`TraceStore`) is content-addressed: the file
name is :func:`artifact_digest` — a SHA-256 over the *design
fingerprint* (source bytes of the registry builder module or of the DSL
spec file), the builder params, the Func Sim executor and the schema
version.  Editing the design source, changing a parameter or executor,
or bumping the schema therefore lands on a new key; stale entries are
never read, only garbage-collected.  Ad-hoc designs (``("compiled",
...)`` references) have no stable fingerprint and are simply not cached.

Default location: ``~/.cache/repro-trace`` (``$XDG_CACHE_HOME``
honoured), overridable via the ``REPRO_TRACE_CACHE`` environment
variable or the ``--trace-cache`` CLI flag / ``Session(trace_cache=…)``
argument.  Caching is **opt-in**: with no env var and no explicit
setting, nothing touches the disk.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import sys
import time as _time
import warnings
from array import array
from dataclasses import dataclass

from ..errors import TraceFormatError
from .columnar import TraceArtifact

#: bump on ANY change to the columnar layout or the header schema; old
#: files then fail the version check and fall back to fresh capture.
SCHEMA_VERSION = 1

MAGIC = b"RTRC"
_HEAD = struct.Struct("<4sI32sQ")  # magic, version, sha256, header len

#: environment variable controlling the cache: a directory path enables
#: it there; "1"/"on"/"true"/"yes" enables the default directory;
#: "0"/"off"/"false"/"no"/"" disables; unset = disabled.
ENV_VAR = "REPRO_TRACE_CACHE"

#: size bound for automatic LRU eviction on write (``N[K|M|G]``); unset
#: or empty = unbounded (manual ``repro trace gc --max-bytes`` only).
MAX_BYTES_ENV_VAR = "REPRO_TRACE_CACHE_MAX_BYTES"

_ENV_OFF = ("", "0", "off", "false", "no")
_ENV_ON = ("1", "on", "true", "yes")


def parse_size(text) -> int:
    """Byte sizes with an optional K/M/G suffix (binary units): ``64M``.

    Raises ``ValueError`` on malformed or negative input (the CLI wraps
    this into its usage error)."""
    text = str(text).strip()
    scale = 1
    suffixes = {"k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}
    if text and text[-1].lower() in suffixes:
        scale = suffixes[text[-1].lower()]
        text = text[:-1]
    value = int(text)  # ValueError propagates with the usual message
    if value < 0:
        raise ValueError(f"size must be >= 0, got {value}")
    return value * scale


def _env_max_bytes() -> int | None:
    raw = os.environ.get(MAX_BYTES_ENV_VAR)
    if raw is None or not raw.strip():
        return None
    try:
        return parse_size(raw)
    except ValueError:
        warnings.warn(
            f"trace cache: ignoring malformed {MAX_BYTES_ENV_VAR}="
            f"{raw!r} (expected N[K|M|G])",
            RuntimeWarning, stacklevel=3,
        )
        return None


# ---------------------------------------------------------------------------
# binary serialization


def dumps_artifact(artifact: TraceArtifact) -> bytes:
    """Serialize an artifact (static columns included if built).

    Raises ``TypeError``/``ValueError`` when the functional payload is
    not JSON-serializable (exotic scalar types from hand-built designs);
    callers treat that artifact as uncacheable.
    """
    manifest = []
    payload_parts = []
    for name, col in artifact.columns():
        manifest.append([name, len(col)])
        payload_parts.append(_le64(col))
    header = json.dumps({
        "meta": artifact.meta_dict(),
        "columns": manifest,
    }, sort_keys=True).encode("utf-8")
    payload = b"".join(payload_parts)
    body = header + payload
    digest = hashlib.sha256(body).digest()
    return _HEAD.pack(MAGIC, SCHEMA_VERSION, digest, len(header)) + body


def loads_artifact(data: bytes) -> TraceArtifact:
    """Inverse of :func:`dumps_artifact`; raises
    :class:`~repro.errors.TraceFormatError` on any malformed input."""
    if len(data) < _HEAD.size:
        raise TraceFormatError(
            f"truncated trace artifact ({len(data)} bytes)"
        )
    magic, version, digest, hlen = _HEAD.unpack_from(data)
    if magic != MAGIC:
        raise TraceFormatError("not a trace artifact (bad magic)")
    if version != SCHEMA_VERSION:
        raise TraceFormatError(
            f"unsupported trace schema version {version} "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    body = data[_HEAD.size:]
    if hashlib.sha256(body).digest() != digest:
        raise TraceFormatError("trace artifact checksum mismatch")
    if hlen > len(body):
        raise TraceFormatError("trace artifact header overruns the file")
    try:
        header = json.loads(body[:hlen].decode("utf-8"))
        manifest = header["columns"]
        meta = header["meta"]
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"malformed trace header: {exc}") from None
    columns: dict[str, array] = {}
    cursor = hlen
    for entry in manifest:
        name, count = entry[0], int(entry[1])
        nbytes = count * 8
        chunk = body[cursor:cursor + nbytes]
        if len(chunk) != nbytes:
            raise TraceFormatError(
                f"trace artifact payload truncated at column {name!r}"
            )
        columns[name] = _from_le64(chunk)
        cursor += nbytes
    try:
        return TraceArtifact.from_serial(meta, columns)
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"trace artifact schema mismatch: {exc}"
        ) from None


def read_header_file(path) -> dict:
    """Header (meta + column manifest) of a serialized artifact straight
    from disk, reading only the fixed head plus the JSON header bytes —
    listing a cache of multi-MiB artifacts (``repro trace info``) must
    not load their payloads.  Does NOT verify the checksum
    (``verify``/``get`` do)."""
    with open(path, "rb") as fh:
        head = fh.read(_HEAD.size)
        if len(head) < _HEAD.size:
            raise TraceFormatError("truncated trace artifact")
        magic, version, _digest, hlen = _HEAD.unpack(head)
        if magic != MAGIC:
            raise TraceFormatError("not a trace artifact (bad magic)")
        if version != SCHEMA_VERSION:
            raise TraceFormatError(
                f"unsupported trace schema version {version}"
            )
        blob = fh.read(hlen)
    if len(blob) < hlen:
        raise TraceFormatError("trace artifact header overruns the file")
    try:
        return json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise TraceFormatError(f"malformed trace header: {exc}") from None


def _le64(col: array) -> bytes:
    if sys.byteorder == "little":
        return col.tobytes()
    clone = array("q", col)
    clone.byteswap()
    return clone.tobytes()


def _from_le64(chunk: bytes) -> array:
    col = array("q")
    col.frombytes(chunk)
    if sys.byteorder != "little":
        col.byteswap()
    return col


# ---------------------------------------------------------------------------
# cache keys


def design_fingerprint(design_ref) -> bytes | None:
    """Stable digest of the design *definition* a reference points at.

    Registry references hash the source file of the builder (so editing
    a design module invalidates its traces); spec-file references hash
    the spec file's bytes.  ``("compiled", ...)`` and unknown reference
    forms return ``None`` — not cacheable.
    """
    tag = design_ref[0]
    if tag == "registry":
        _tag, name, _params = design_ref
        import inspect

        from ..designs import registry

        try:
            spec = registry.get(name)
            path = inspect.getsourcefile(spec.build)
            with open(path, "rb") as fh:
                blob = fh.read()
        except (KeyError, TypeError, OSError):
            return None
        ident = f"registry:{spec.name}"
    elif tag == "specfile":
        _tag, path, _params = design_ref
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        ident = "specfile"
    else:
        return None
    h = hashlib.sha256()
    h.update(ident.encode("utf-8"))
    h.update(b"\0")
    h.update(blob)
    return h.digest()


def artifact_digest(design_ref, executor: str) -> str | None:
    """Content-address of one baseline capture:
    ``sha256(schema, repro version, design fingerprint, params,
    executor)`` — or ``None`` when the design is not fingerprintable."""
    fingerprint = design_fingerprint(design_ref)
    if fingerprint is None:
        return None
    from .. import __version__

    params = design_ref[2]
    h = hashlib.sha256()
    h.update(
        f"schema={SCHEMA_VERSION};repro={__version__};"
        f"executor={executor};params={sorted(params.items())!r};"
        .encode("utf-8")
    )
    h.update(fingerprint)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# the on-disk store


@dataclass(frozen=True)
class CacheEntry:
    """One cached artifact file, as listed by ``TraceStore.entries``."""

    digest: str
    path: str
    size: int
    mtime: float
    #: last-use time — refreshed explicitly by ``TraceStore.get`` (the
    #: filesystem's own atime is unreliable under relatime/noatime), so
    #: size-bounded gc can evict least-recently-used entries first
    atime: float = 0.0


class TraceStore:
    """Content-addressed directory of serialized trace artifacts.

    ``max_bytes`` (or the ``REPRO_TRACE_CACHE_MAX_BYTES`` environment
    variable, ``N[K|M|G]``) bounds the cache size: every successful
    :meth:`put` opportunistically runs the LRU eviction pass
    (:meth:`gc` with ``max_bytes``), so a long-running process — the
    simulation service in particular — cannot grow the cache without
    bound.  Unset = unbounded, exactly the old behavior."""

    SUFFIX = ".trace"

    def __init__(self, root, max_bytes: int | None = None):
        self.root = os.path.abspath(os.path.expanduser(os.fspath(root)))
        self.max_bytes = (max_bytes if max_bytes is not None
                          else _env_max_bytes())

    def path(self, digest: str) -> str:
        return os.path.join(self.root, digest + self.SUFFIX)

    def contains(self, digest: str) -> bool:
        return os.path.exists(self.path(digest))

    def get(self, digest: str) -> TraceArtifact | None:
        """Load a cached artifact; ``None`` on miss OR on any corrupt /
        unreadable / wrong-schema file (with a warning — the caller
        falls back to fresh capture; the bad file is removed so the
        next capture rewrites it)."""
        path = self.path(digest)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            warnings.warn(
                f"trace cache: cannot read {path}: {exc}; re-capturing",
                RuntimeWarning, stacklevel=2,
            )
            return None
        try:
            artifact = loads_artifact(data)
        except TraceFormatError as exc:
            warnings.warn(
                f"trace cache: discarding {os.path.basename(path)} "
                f"({exc}); re-capturing",
                RuntimeWarning, stacklevel=2,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._touch(path)
        return artifact

    def _touch(self, path: str) -> None:
        """Refresh the entry's access time (mtime preserved — age-based
        gc keys on creation, LRU eviction on last use)."""
        try:
            st = os.stat(path)
            os.utime(path, (_time.time(), st.st_mtime))
        except OSError:
            pass

    def put(self, digest: str, artifact: TraceArtifact) -> bool:
        """Serialize ``artifact`` under ``digest`` (atomic write).

        The static columns are built first so warm loads skip the edge
        build as well as the capture.  Returns ``False`` (with a
        warning) when the artifact cannot be serialized — e.g. a
        functional payload that is not JSON-representable."""
        artifact.ensure_static()
        try:
            blob = dumps_artifact(artifact)
        except (TypeError, ValueError) as exc:
            warnings.warn(
                f"trace cache: artifact for {artifact.design_name!r} is "
                f"not serializable ({exc}); skipping",
                RuntimeWarning, stacklevel=2,
            )
            return False
        os.makedirs(self.root, exist_ok=True)
        tmp = self.path(digest) + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, self.path(digest))
        except OSError as exc:
            warnings.warn(
                f"trace cache: cannot write under {self.root}: {exc}",
                RuntimeWarning, stacklevel=2,
            )
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        if self.max_bytes is not None:
            # Opportunistic LRU eviction keeps the cache inside its
            # size bound without a separate maintenance process; the
            # entry just written has the freshest access time, so it is
            # the last candidate (evicted only when it alone exceeds
            # the bound).
            self.gc(max_bytes=self.max_bytes)
        return True

    def entries(self) -> list[CacheEntry]:
        """Every cached artifact, newest first."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        out = []
        for name in names:
            if not name.endswith(self.SUFFIX):
                continue
            path = os.path.join(self.root, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            out.append(CacheEntry(
                digest=name[:-len(self.SUFFIX)], path=path,
                size=st.st_size, mtime=st.st_mtime, atime=st.st_atime,
            ))
        out.sort(key=lambda e: e.mtime, reverse=True)
        return out

    def verify(self, prune: bool = False):
        """Full checksum/schema check of every entry.

        Returns ``(ok, corrupt)`` lists of ``(entry, detail)`` pairs;
        ``prune=True`` deletes the corrupt files."""
        ok, corrupt = [], []
        for entry in self.entries():
            try:
                with open(entry.path, "rb") as fh:
                    artifact = loads_artifact(fh.read())
                ok.append((entry, artifact.design_name))
            except (TraceFormatError, OSError) as exc:
                corrupt.append((entry, str(exc)))
                if prune:
                    try:
                        os.unlink(entry.path)
                    except OSError:
                        pass
        return ok, corrupt

    def gc(self, older_than_days: float | None = None,
           max_bytes: int | None = None):
        """Delete cached artifacts.  Returns ``(count, bytes)`` removed.

        With no arguments everything goes.  ``older_than_days`` deletes
        entries whose creation (mtime) is older than that;
        ``max_bytes`` then bounds the total cache size by evicting
        least-recently-used entries (oldest access time first — ``get``
        refreshes it) until the survivors fit.  The two compose: age
        filter first, size bound on what's left.

        Safe at any time: entries are pure derived state — the next
        capture rebuilds and re-caches them.
        """
        entries = self.entries()
        if older_than_days is None and max_bytes is None:
            doomed, survivors = list(entries), []
        else:
            doomed, survivors = [], list(entries)
            if older_than_days is not None:
                cutoff = _time.time() - older_than_days * 86400.0
                doomed += [e for e in survivors if e.mtime < cutoff]
                survivors = [e for e in survivors if e.mtime >= cutoff]
            if max_bytes is not None:
                survivors.sort(key=lambda e: e.atime)  # LRU first
                total = sum(e.size for e in survivors)
                while survivors and total > max_bytes:
                    victim = survivors.pop(0)
                    doomed.append(victim)
                    total -= victim.size
        removed = 0
        reclaimed = 0
        for entry in doomed:
            try:
                os.unlink(entry.path)
            except OSError:
                continue
            removed += 1
            reclaimed += entry.size
        return removed, reclaimed


# ---------------------------------------------------------------------------
# resolution


def default_cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME")
    if not base:
        base = os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-trace")


def resolve_store(setting=None, *, fallback: bool = False
                  ) -> TraceStore | None:
    """Turn a user-facing cache setting into a :class:`TraceStore`.

    ``setting`` may be ``None`` (consult :data:`ENV_VAR`; disabled when
    unset unless ``fallback=True``, which the ``repro trace`` management
    commands use to default to the standard directory), ``False``
    (explicitly disabled), ``True`` (default directory), a directory
    path, or an existing :class:`TraceStore`.
    """
    if setting is None:
        env = os.environ.get(ENV_VAR)
        if env is None:
            return TraceStore(default_cache_dir()) if fallback else None
        low = env.strip().lower()
        if low in _ENV_OFF:
            return None
        if low in _ENV_ON:
            return TraceStore(default_cache_dir())
        return TraceStore(env)
    if setting is False:
        return None
    if setting is True:
        return TraceStore(default_cache_dir())
    if isinstance(setting, TraceStore):
        return setting
    return TraceStore(setting)
