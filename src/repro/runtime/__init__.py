"""Runtime library substrate: FIFO channels, AXI ports, request types."""

from .axi import AxiPort
from .fifo import FifoChannel
from .requests import ALL_REQUEST_TYPES, QUERY_TYPES, Request

__all__ = [
    "ALL_REQUEST_TYPES",
    "AxiPort",
    "FifoChannel",
    "QUERY_TYPES",
    "Request",
]
