"""Request taxonomy: what Func Sim threads send to the Perf Sim thread.

This mirrors the paper's Table 1 exactly.  Every hardware-visible action of
a module's functional execution becomes a :class:`Request`; requests whose
outcome depends on hardware timing (the last three rows of Table 1, plus
the FIFO status checks) are *queries* and may pause the issuing thread.

============== ==============================================  ======
Request        Description                                     Query?
============== ==============================================  ======
TraceBlock     A basic block was executed
StartTask      A dataflow task started in a new thread
FifoRead       FIFO was read from (blocking)
FifoWrite      FIFO was written to (blocking)
AxiReadReq     A read request issued on AXI
AxiWriteReq    A write request issued on AXI
AxiRead        AXI was read from
AxiWrite       AXI was written to
AxiWriteResp   A write response was issued on AXI
FifoCanRead    Query for FIFO empty                            yes
FifoCanWrite   Query for FIFO full                             yes
FifoNbRead     An NB FIFO read attempted                       yes
FifoNbWrite    An NB FIFO write attempted                      yes
EndTask        A dataflow task finished
============== ==============================================  ======

Requests are the highest-volume allocation in a simulation (one per
hardware-visible event), so every class here is slotted:
``@dataclass(slots=True)`` generates ``__slots__`` from the fields and
keeps instances ``__dict__``-free.  ``tests/test_units_misc.py`` guards
the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class Request:
    """Base request; ``nominal`` is the zero-stall cycle computed by the
    issuing Func Sim thread from the static schedule.

    ``segment``/``seg_base``/``pipelined`` describe the timing segment the
    event belongs to (straight-line region or one pipelined-loop
    iteration); see :mod:`repro.sim.ledger` for the timing contract.
    """

    module: str
    seq: int
    nominal: int
    segment: int = 0
    seg_base: int = 0
    pipelined: bool = False

    #: Overridden by subclasses; True if resolving this request requires
    #: exact hardware timing (it may pause the thread).
    is_query = False
    #: True if the interpreter needs a response value to continue.
    needs_response = False
    kind = "request"


@dataclass(slots=True)
class TraceBlock(Request):
    block_label: str = ""
    kind = "trace_block"


@dataclass(slots=True)
class StartTask(Request):
    kind = "start_task"


@dataclass(slots=True)
class EndTask(Request):
    kind = "end_task"


@dataclass(slots=True)
class FifoRead(Request):
    fifo: str = ""
    kind = "fifo_read"
    needs_response = True  # the value


@dataclass(slots=True)
class FifoWrite(Request):
    fifo: str = ""
    value: object = None
    kind = "fifo_write"


@dataclass(slots=True)
class FifoNbRead(Request):
    fifo: str = ""
    kind = "fifo_nb_read"
    is_query = True
    needs_response = True  # (ok, value)


@dataclass(slots=True)
class FifoNbWrite(Request):
    fifo: str = ""
    value: object = None
    kind = "fifo_nb_write"
    is_query = True
    needs_response = True  # ok


@dataclass(slots=True)
class FifoCanRead(Request):
    fifo: str = ""
    kind = "fifo_can_read"
    is_query = True
    needs_response = True  # bool


@dataclass(slots=True)
class FifoCanWrite(Request):
    fifo: str = ""
    kind = "fifo_can_write"
    is_query = True
    needs_response = True  # bool


@dataclass(slots=True)
class AxiReadReq(Request):
    port: str = ""
    offset: int = 0
    length: int = 0
    kind = "axi_read_req"


@dataclass(slots=True)
class AxiRead(Request):
    port: str = ""
    kind = "axi_read"
    needs_response = True  # the beat value


@dataclass(slots=True)
class AxiWriteReq(Request):
    port: str = ""
    offset: int = 0
    length: int = 0
    kind = "axi_write_req"


@dataclass(slots=True)
class AxiWrite(Request):
    port: str = ""
    value: object = None
    kind = "axi_write"


@dataclass(slots=True)
class AxiWriteResp(Request):
    port: str = ""
    kind = "axi_write_resp"


ALL_REQUEST_TYPES = (
    TraceBlock, StartTask, EndTask,
    FifoRead, FifoWrite, FifoNbRead, FifoNbWrite,
    FifoCanRead, FifoCanWrite,
    AxiReadReq, AxiRead, AxiWriteReq, AxiWrite, AxiWriteResp,
)

QUERY_TYPES = (FifoNbRead, FifoNbWrite, FifoCanRead, FifoCanWrite)
