"""AXI master port model.

Models the latency behaviour of a Vitis ``m_axi`` interface: a read burst
request committed at cycle c delivers beat i at ``c + read_latency + i``;
write beats are posted, and the write response arrives ``write_latency``
cycles after a burst's last beat commits.  Port contention is not modelled
(each port owns its channel).

Mirroring :class:`~repro.runtime.fifo.FifoChannel`, the functional view
(which value a beat carries) is resolved at *emission* time in program
order, while the timing view (when each request/beat commits) is resolved
by the driving engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(eq=False)
class _Burst:
    offset: int
    length: int
    #: index of this burst's first beat (0-based, cumulative across bursts)
    first_beat: int
    commit_cycle: int | None = None


@dataclass
class AxiPort:
    """State of one AXI master port and its backing memory."""

    name: str
    memory: list
    read_latency: int = 12
    write_latency: int = 6

    read_bursts: list = field(default_factory=list)
    write_bursts: list = field(default_factory=list)
    #: beats handed out at emission (functional view)
    emitted_read_beats: int = 0
    emitted_write_beats: int = 0
    #: commit cycle per beat (timing view)
    read_beat_times: list = field(default_factory=list)
    write_beat_times: list = field(default_factory=list)
    #: per-channel serialization (one transfer per channel per cycle)
    read_channel_time: int = -1
    write_channel_time: int = -1
    req_channel_time: int = -1

    # --- emission-time (functional) operations -----------------------------

    def emit_read_req(self, offset: int, length: int) -> int:
        """Register a read burst; returns its request index."""
        self._check_range("read", offset, length)
        first = (self.read_bursts[-1].first_beat + self.read_bursts[-1].length
                 if self.read_bursts else 0)
        self.read_bursts.append(_Burst(offset, length, first))
        return len(self.read_bursts) - 1

    def emit_read_beat(self) -> tuple[int, object]:
        """Hand out the next read beat; returns (beat_index, value)."""
        beat = self.emitted_read_beats
        burst = self._burst_of(self.read_bursts, beat, "read")
        value = self.memory[burst.offset + (beat - burst.first_beat)]
        self.emitted_read_beats += 1
        return beat, value

    def emit_write_req(self, offset: int, length: int) -> int:
        self._check_range("write", offset, length)
        first = (self.write_bursts[-1].first_beat
                 + self.write_bursts[-1].length
                 if self.write_bursts else 0)
        self.write_bursts.append(_Burst(offset, length, first))
        return len(self.write_bursts) - 1

    def emit_write_beat(self, value) -> int:
        """Apply the next write beat's value to memory; returns beat index."""
        beat = self.emitted_write_beats
        burst = self._burst_of(self.write_bursts, beat, "write")
        self.memory[burst.offset + (beat - burst.first_beat)] = value
        self.emitted_write_beats += 1
        return beat

    def emit_write_resp(self) -> int:
        """Associate a write_resp with the most recent fully-sent burst;
        returns that burst's index."""
        if not self.write_bursts:
            raise SimulationError(
                f"axi {self.name}: write_resp with no write burst"
            )
        burst_index = len(self.write_bursts) - 1
        burst = self.write_bursts[burst_index]
        if self.emitted_write_beats < burst.first_beat + burst.length:
            raise SimulationError(
                f"axi {self.name}: write_resp before all beats of the burst "
                "were sent"
            )
        return burst_index

    # --- commit-time (timing) operations ------------------------------------

    def commit_read_req(self, req_index: int, cycle: int) -> None:
        self.read_bursts[req_index].commit_cycle = cycle

    def commit_write_req(self, req_index: int, cycle: int) -> None:
        self.write_bursts[req_index].commit_cycle = cycle

    def read_beat_source(self, beat: int) -> tuple[int, int]:
        """(burst request index, beat offset within the burst) for a beat."""
        burst = self._burst_of(self.read_bursts, beat, "read")
        for index, candidate in enumerate(self.read_bursts):
            if candidate is burst:
                return index, beat - burst.first_beat
        raise SimulationError(
            f"axi {self.name}: burst lookup failed for beat {beat}"
        )

    def read_beat_ready(self, beat: int) -> int | None:
        """Earliest cycle beat ``beat`` can be consumed, or None if its
        burst request has not committed yet."""
        burst = self._burst_of(self.read_bursts, beat, "read")
        if burst.commit_cycle is None:
            return None
        return burst.commit_cycle + self.read_latency + (beat
                                                         - burst.first_beat)

    def commit_read_beat(self, beat: int, cycle: int) -> None:
        assert len(self.read_beat_times) == beat
        self.read_beat_times.append(cycle)

    def commit_write_beat(self, beat: int, cycle: int) -> None:
        assert len(self.write_beat_times) == beat
        self.write_beat_times.append(cycle)

    def write_resp_ready(self, burst_index: int) -> int | None:
        """Cycle the response for ``burst_index`` arrives, or None if the
        burst's last beat has not committed yet."""
        burst = self.write_bursts[burst_index]
        last_beat = burst.first_beat + burst.length - 1
        if last_beat >= len(self.write_beat_times):
            return None
        return self.write_beat_times[last_beat] + self.write_latency

    # --- helpers ------------------------------------------------------------

    def _burst_of(self, bursts: list, beat: int, what: str) -> _Burst:
        for burst in reversed(bursts):
            if beat >= burst.first_beat:
                if beat < burst.first_beat + burst.length:
                    return burst
                break
        raise SimulationError(
            f"axi {self.name}: {what} beat {beat} outside any burst "
            "(missing or exhausted request)"
        )

    def _check_range(self, what: str, offset: int, length: int) -> None:
        if length <= 0:
            raise SimulationError(
                f"axi {self.name}: {what} burst length must be positive"
            )
        if offset < 0 or offset + length > len(self.memory):
            raise SimulationError(
                f"axi {self.name}: {what} burst [{offset}, {offset + length})"
                f" out of bounds (size {len(self.memory)})"
            )
