"""FIFO channel state and the FIFO read/write timing tables.

:class:`FifoChannel` is data structure (D) of the paper's Fig. 7: per FIFO
it records the exact hardware cycle of every committed read and write.
These tables are what the Perf Sim thread consults to resolve non-blocking
queries (paper Table 2) — deliberately *not* a simple occupancy counter,
because software thread scheduling order does not match hardware timing.

Two views of a FIFO are kept deliberately separate:

* the **functional** view: the sequence of successfully written values.
  For blocking accesses this is timing-independent (paper section 3.2.2),
  so values are recorded as soon as the access is *emitted* by a Func Sim
  thread, letting readers run ahead functionally;
* the **timing** view: the commit cycle of each access (the R/W tables),
  filled in as the Perf Sim thread resolves hardware timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass
class FifoChannel:
    """State of one FIFO: depth, value sequence, and the R/W timing tables."""

    name: str
    depth: int
    #: Values of all successful writes ever, in write-index order.  Appended
    #: when a blocking write is emitted or a non-blocking write resolves
    #: successfully.
    values: list = field(default_factory=list)
    #: 1-based index already handed out to emitted blocking reads.
    emitted_reads: int = 0
    #: Commit cycle of the i-th successful write (the write table).
    write_times: list = field(default_factory=list)
    #: Commit cycle of the i-th successful read (the read table).
    read_times: list = field(default_factory=list)
    #: Port-occupancy serialization: one access per port per cycle.  These
    #: track the last cycle each port was used (including *failed*
    #: non-blocking attempts, which still occupy the port).
    read_port_time: int = -1
    write_port_time: int = -1

    # --- functional (value) view ------------------------------------------

    @property
    def emitted_writes(self) -> int:
        return len(self.values)

    def push_value(self, value) -> int:
        """Record a successful write's value; returns its 1-based index."""
        self.values.append(value)
        return len(self.values)

    def assign_read_index(self) -> int:
        """Reserve the next read index for an emitted blocking read."""
        self.emitted_reads += 1
        return self.emitted_reads

    def value_available(self, read_index: int) -> bool:
        return read_index <= len(self.values)

    def value_for(self, read_index: int):
        return self.values[read_index - 1]

    # --- timing (commit) view ------------------------------------------

    def commit_write(self, index: int, cycle: int) -> None:
        # A real exception, not an assert: the in-order-commit invariant
        # must hold under ``python -O`` too.
        if len(self.write_times) != index - 1:
            raise SimulationError(
                f"fifo {self.name}: out-of-order write commit "
                f"(index {index}, {len(self.write_times)} committed)"
            )
        self.write_times.append(cycle)

    def commit_read(self, index: int, cycle: int) -> None:
        if len(self.read_times) != index - 1:
            raise SimulationError(
                f"fifo {self.name}: out-of-order read commit "
                f"(index {index}, {len(self.read_times)} committed)"
            )
        self.read_times.append(cycle)

    def write_time(self, index: int) -> int | None:
        """Commit cycle of the 1-based ``index``-th write, if committed."""
        if 1 <= index <= len(self.write_times):
            return self.write_times[index - 1]
        return None

    def read_time(self, index: int) -> int | None:
        if 1 <= index <= len(self.read_times):
            return self.read_times[index - 1]
        return None

    @property
    def committed_writes(self) -> int:
        return len(self.write_times)

    @property
    def committed_reads(self) -> int:
        return len(self.read_times)

    # --- cycle-stepped occupancy view (used by the co-simulator) ----------

    def can_read_at(self, cycle: int) -> bool:
        """True if a read attempted at ``cycle`` finds data: some write
        committed strictly before ``cycle`` is still unconsumed."""
        writes = _count_before(self.write_times, cycle)
        return writes > len(self.read_times)

    def can_write_at(self, cycle: int) -> bool:
        """True if a write attempted at ``cycle`` finds space: occupancy
        (counting only reads strictly before ``cycle``) is below depth."""
        reads = _count_before(self.read_times, cycle)
        return len(self.write_times) - reads < self.depth

    # --- end-of-simulation reporting ------------------------------------

    def leftover(self) -> int:
        """Written values never consumed (for Vitis-style warnings)."""
        return len(self.values) - len(self.read_times)


def _count_before(times: list, cycle: int) -> int:
    """How many committed events happened strictly before ``cycle``.

    ``times`` is non-decreasing (each endpoint commits in time order), so a
    reverse scan from the end is cheap in the common case.
    """
    count = len(times)
    while count > 0 and times[count - 1] >= cycle:
        count -= 1
    return count
