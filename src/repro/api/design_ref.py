"""Design references: one resolution path for every entry point.

A *design reference* is the small, picklable description of where a
design comes from, so the compiled artifact can be rebuilt on the other
side of a process boundary (``Session.run_many`` workers, ``repro.dse``
pool shards) without shipping the whole object graph:

* ``("registry", name, params)`` — recompile from the design registry
  (group aliases accepted);
* ``("specfile", path, params)`` — re-parse a declarative DSL spec file
  (generated designs' kernels are ``exec``-built and don't pickle);
* ``("compiled", compiled)`` — ship the already-compiled design through
  pickle (ad-hoc designs built outside the registry).

A fourth form references a *captured trace* rather than a design:

* ``("trace", digest, cache_dir)`` — a baseline
  :class:`~repro.trace.TraceArtifact` in the content-addressed on-disk
  store.  ``repro.dse`` pool workers receive this instead of the pickled
  baseline object when the artifact is cached: the initializer payload
  shrinks to a digest and every worker loads the (static-edge-complete)
  artifact straight from the shared store via
  :func:`load_trace_from_ref`.

:func:`resolve_design` turns anything a user may hand
:class:`repro.api.Session` into ``(ref, compile_fn, spec)``;
:func:`compile_from_ref` is its worker-side inverse (trace references
name a capture, not a design, so they are rejected there).  Before this
module existed the same resolve→compile wiring was re-implemented by
``cli.cmd_run``, ``bench.py`` and three near-copies inside
``dse/explorer.py``.
"""

from __future__ import annotations

from ..compile import CompiledDesign, compile_design
from ..designs.registry import DesignSpec
from ..hls.design import Design


def resolve_design(design, params: dict | None = None):
    """Resolve a user-facing design argument.

    Args:
        design: a registry name or group alias, a DSL spec file path, a
            :class:`~repro.designs.registry.DesignSpec`, an
            :class:`~repro.hls.Design`, or a
            :class:`~repro.compile.CompiledDesign`.
        params: builder parameter overrides (``n=256``); only meaningful
            for designs that are built from a spec (name, path,
            DesignSpec).

    Returns:
        ``(ref, compile_fn, spec)`` — the picklable design reference, a
        zero-argument callable producing the :class:`CompiledDesign`
        (lazy for name/path references: resolution errors surface
        eagerly, compilation cost is deferred until needed), and the
        :class:`DesignSpec` when one exists (``None`` for raw
        Design/CompiledDesign objects).

    Raises:
        UnknownDesignError: for unknown registry names (with the full
            name/alias hint).
        SpecError: for malformed spec files.
        TypeError: for argument types that cannot name a design, or
            ``params`` passed with an already-built design.
    """
    params = dict(params or {})
    if isinstance(design, str):
        from ..designs import dsl, registry

        spec = registry.resolve(design)  # eager: surface unknown names now
        if dsl.looks_like_spec_path(design):
            ref = ("specfile", design, params)
        else:
            ref = ("registry", design, params)
        return ref, (lambda: compile_design(spec.make(**params))), spec
    if isinstance(design, DesignSpec):
        compiled = compile_design(design.make(**params))
        return ("compiled", compiled), (lambda: compiled), design
    if params:
        raise TypeError(
            "design parameters only apply to designs built from a spec "
            "(registry name, spec path, or DesignSpec); got params "
            f"{sorted(params)} with {type(design).__name__}"
        )
    if isinstance(design, Design):
        compiled = compile_design(design)
        return ("compiled", compiled), (lambda: compiled), None
    if isinstance(design, CompiledDesign):
        return ("compiled", design), (lambda: design), None
    raise TypeError(
        "expected a design name, spec path, DesignSpec, hls.Design or "
        f"CompiledDesign; got {type(design).__name__}"
    )


def compile_from_ref(ref) -> CompiledDesign:
    """Rebuild the compiled design a reference describes (worker side)."""
    tag = ref[0]
    if tag == "registry":
        _tag, name, params = ref
        from ..designs import registry

        return compile_design(registry.get(name).make(**params))
    if tag == "specfile":
        _tag, path, params = ref
        from ..designs import dsl

        return compile_design(dsl.load_design_spec(path).make(**params))
    if tag == "compiled":
        return ref[1]
    if tag == "trace":
        raise ValueError(
            "a ('trace', digest) reference names a captured baseline, "
            "not a design; load it with load_trace_from_ref"
        )
    raise ValueError(f"unknown design reference tag {ref[0]!r}")


def trace_ref(digest: str, cache_dir) -> tuple:
    """Build a ``("trace", digest, cache_dir)`` reference to a cached
    baseline artifact (what ``repro.dse`` ships to pool workers)."""
    import os

    return ("trace", digest, os.fspath(cache_dir))


def load_trace_from_ref(ref):
    """Worker-side loader for a ``("trace", digest, cache_dir)``
    reference.

    Returns the :class:`~repro.trace.TraceArtifact`, or ``None`` when
    the entry has vanished or fails validation (the store warns; the
    worker then falls back to full re-simulation per configuration).
    """
    tag = ref[0]
    if tag != "trace":
        raise ValueError(f"expected a trace reference, got {tag!r}")
    from ..trace.store import TraceStore

    _tag, digest, cache_dir = ref
    return TraceStore(cache_dir).get(digest)
