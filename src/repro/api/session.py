"""The Session facade: one compiled artifact, many cheap runs.

A :class:`Session` owns the cached :class:`~repro.compile.CompiledDesign`
and the captured baseline simulation (graph + query constraints) for one
design, and exposes every operation the CLI, the benchmark harness and
the depth-space explorer previously wired up by hand:

    from repro.api import Session

    with Session.open("fig4_ex5") as session:
        result = session.run()                      # OmniSim, RTL cycles
        oracle = session.run(engine="cosim")        # cycle-stepped check
        fast = session.resimulate({"fifo2": 8})     # incremental, µs
        batch = session.run_many(
            [{"depths": {"fifo2": d}} for d in (2, 4, 8, 16)], jobs=2)

Lifecycle and caching rules (DESIGN.md section 13):

* the design is resolved **eagerly** at ``open`` (unknown names fail
  fast), compiled **lazily** on first use, and the compiled artifact is
  cached for the life of the session;
* ``baseline()`` caches one captured OmniSim run per Func Sim executor —
  the reference that ``trace``/``resimulate`` replay against;
* with a trace cache enabled (``trace_cache=`` / ``REPRO_TRACE_CACHE``),
  ``baseline()`` first consults the content-addressed on-disk store
  (:mod:`repro.trace.store`): a hit skips compilation *and* capture
  entirely (the baseline then carries the columnar artifact but no
  object graph); fresh captures are written back for the next process;
* a session assumes its design is immutable; re-open (or
  ``baseline(refresh=True)``) after mutating a design object in place;
* sessions are **thread-safe for caching**: concurrent first-touch
  calls to :attr:`compiled` / :meth:`baseline` from many threads (the
  simulation service dispatches requests to a thread pool) perform
  exactly one compile and one capture — an internal re-entrant lock
  serializes cache fills, and every later call is a lock-free-in-effect
  cached read.
"""

from __future__ import annotations

import threading

from ..sim.context import resolve_executor
from ..sim.registry import run_engine, validate_depth_names, validate_depths
from ..trace.store import artifact_digest, resolve_store
from .design_ref import resolve_design


class Session:
    """Programmatic facade over one design's compile/simulate lifecycle."""

    def __init__(self, design, *, executor: str | None = None,
                 trace_cache=None, **params):
        """See :meth:`open` (the constructor and ``open`` are
        equivalent; ``open`` reads better at call sites)."""
        self.design_ref, self._compile_fn, self.spec = resolve_design(
            design, params
        )
        #: builder parameter overrides the design was opened with
        self.params = dict(params)
        #: default Func Sim executor for every run (None -> "compiled")
        self.executor = executor
        #: the on-disk trace store, or None when caching is disabled
        self.trace_store = resolve_store(trace_cache)
        self._compiled = None
        #: executor name -> captured baseline OmniSim run
        self._baselines: dict = {}
        # Serializes compile/capture cache fills so concurrent threads
        # (service worker pool) never duplicate the expensive work;
        # re-entrant because baseline() compiles under the same lock.
        self._lock = threading.RLock()

    @classmethod
    def open(cls, design, *, executor: str | None = None,
             trace_cache=None, **params) -> "Session":
        """Open a session on a design.

        Args:
            design: registry name or group alias (``"fig4_ex5"``,
                ``"typea_large"``), DSL spec path (``"corpus/a.yaml"``),
                :class:`~repro.designs.registry.DesignSpec`,
                :class:`~repro.hls.Design`, or an already-compiled
                :class:`~repro.compile.CompiledDesign`.
            executor: default Func Sim executor for this session's runs
                (``"compiled"``/``"interp"``; per-call ``executor=``
                overrides it).
            trace_cache: on-disk trace-artifact cache setting — a
                directory path, ``True`` (default directory,
                ``~/.cache/repro-trace``), ``False`` (disabled even if
                the env var is set), or ``None`` (consult
                ``REPRO_TRACE_CACHE``; disabled when unset).
            **params: builder parameter overrides, e.g. ``n=256``.
        """
        return cls(design, executor=executor, trace_cache=trace_cache,
                   **params)

    # -- cached artifacts ----------------------------------------------

    @property
    def compiled(self):
        """The compiled design (front-end + scheduling), built once —
        even under concurrent first-touch from many threads."""
        if self._compiled is None:
            with self._lock:
                if self._compiled is None:
                    self._compiled = self._compile_fn()
        return self._compiled

    @property
    def name(self) -> str:
        """The design's name (without forcing compilation when a spec
        is known)."""
        if self.spec is not None:
            return self.spec.name
        return self.compiled.name

    def trace_digest(self, executor: str | None = None) -> str | None:
        """The content-address of this session's baseline capture under
        ``executor`` (see :func:`repro.trace.artifact_digest`), or
        ``None`` when the design is not fingerprintable (ad-hoc compiled
        objects)."""
        key = resolve_executor(executor if executor is not None
                               else self.executor)
        return artifact_digest(self.design_ref, key)

    def baseline(self, *, executor: str | None = None,
                 refresh: bool = False):
        """The captured OmniSim reference run (trace artifact +
        constraints; plus the object graph on fresh captures).

        Cached per Func Sim executor; ``refresh=True`` re-captures (the
        invalidation knob for mutated designs or fresh timing numbers)
        and rewrites the on-disk cache entry.  With a trace store
        enabled, a warm hit loads the columnar artifact instead of
        compiling + capturing; the result's
        ``phase_seconds["capture"]`` reports ``"warm"`` or ``"cold"``.
        """
        key = resolve_executor(executor if executor is not None
                               else self.executor)
        if refresh or key not in self._baselines:
            with self._lock:
                if refresh or key not in self._baselines:
                    self._baselines[key] = self._capture_baseline(
                        key, refresh)
        return self._baselines[key]

    def has_baseline(self, executor: str | None = None) -> bool:
        """Whether the baseline for ``executor`` is already cached
        in-memory (no compile, capture or disk I/O is triggered) —
        what the simulation service consults to label a request
        ``hot`` before dispatching a capture."""
        key = resolve_executor(executor if executor is not None
                               else self.executor)
        return key in self._baselines

    def _capture_baseline(self, key: str, refresh: bool):
        """The baseline cache fill (store lookup, else capture +
        write-back); runs under ``_lock``."""
        result = None
        store = self.trace_store
        digest = (self.trace_digest(key) if store is not None
                  else None)
        if not refresh and digest is not None:
            artifact = store.get(digest)
            if artifact is not None:
                result = artifact.to_result()
                result.phase_seconds["capture"] = "warm"
        if result is None:
            result = run_engine("omnisim", self.compiled,
                                executor=key)
            result.phase_seconds["capture"] = "cold"
            if digest is not None:
                from ..trace.columnar import replay_trace

                artifact = replay_trace(result, executor=key)
                if artifact is not None:
                    store.put(digest, artifact)
        return result

    @property
    def graph(self):
        """The captured :class:`~repro.sim.graph.SimulationGraph` —
        ``None`` for warm-cache baselines (which carry only the columnar
        :attr:`trace`)."""
        return self.baseline().graph

    @property
    def trace(self):
        """The captured :class:`~repro.trace.TraceArtifact` — the
        preferred replay handle, derived from the baseline on first
        access (and loaded directly on warm-cache baselines)."""
        from ..trace.columnar import replay_trace

        return replay_trace(self.baseline())

    # -- execution ------------------------------------------------------

    def run(self, engine: str = "omnisim", *, executor: str | None = None,
            depths: dict | None = None, **kwargs):
        """Simulate once and return the
        :class:`~repro.sim.result.SimulationResult`.

        ``engine`` is a registry name (``repro.sim.engine_names()``);
        ``depths`` are per-FIFO overrides, validated here — unknown FIFO
        names raise :class:`~repro.errors.UnknownFifoError`, and depths
        passed to an engine with ``supports_depths=False`` (csim) are
        dropped with an explicit warning.  Extra ``kwargs`` forward to
        the engine constructor (``step_limit=`` etc.).
        """
        if executor is None:
            executor = self.executor
        return run_engine(engine, self.compiled, depths=depths,
                          executor=executor, **kwargs)

    def resimulate(self, depths: dict, *, executor: str | None = None):
        """Incrementally re-simulate the cached baseline under new
        depths (microseconds; no Func Sim re-execution).

        Returns an :class:`~repro.sim.incremental.IncrementalResult`;
        raises :class:`~repro.errors.ConstraintViolation` when a
        recorded query flips under the new depths (fall back to
        ``run(depths=...)`` — or use :meth:`sweep`, which automates
        exactly that).

        A warm-cache baseline validates the depth names against the
        artifact's declared FIFO map, so the whole replay stays
        compile-free.
        """
        from ..sim.incremental import resimulate
        from ..trace.columnar import replay_trace

        baseline = self.baseline(executor=executor)
        trace = replay_trace(baseline)
        if trace is not None and self._compiled is None:
            depths = validate_depth_names(depths, trace.depths,
                                          trace.design_name)
        else:
            depths = validate_depths(self.compiled, depths)
        return resimulate(baseline, depths)

    def resimulate_many(self, configs, *, executor: str | None = None,
                        batch_size: int | None = None) -> list:
        """Batched :meth:`resimulate`: evaluate many depth-override
        dicts against the cached baseline in one vectorized matrix
        sweep.

        Returns one entry per config, **in config order**: an
        :class:`~repro.sim.incremental.IncrementalResult` (bit-for-bit
        what scalar :meth:`resimulate` would return) when the recorded
        constraints re-validate under that row's depths, or ``None``
        when the row needs a full run (constraint flip — the scalar path
        would raise :class:`~repro.errors.ConstraintViolation` — or the
        row falls outside the kernel's safe range).  Unlike
        :meth:`run_many` there is no full-simulation fallback: callers
        that want automatic fallback + re-capture use :meth:`sweep` or
        :meth:`run_many`.

        Without NumPy (or on artifacts lacking the all-depth replay
        order) every row is evaluated by the scalar path instead —
        same values, just not batched.
        """
        from ..trace.columnar import replay_trace
        from ..trace.vectorized import (
            DEFAULT_BATCH_SIZE,
            batch_supported,
            resimulate_batch,
        )

        if batch_size is None:
            batch_size = DEFAULT_BATCH_SIZE
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        configs = list(configs)
        baseline = self.baseline(executor=executor)
        trace = replay_trace(baseline)
        out: list = []
        if trace is not None and batch_supported(trace):
            for lo in range(0, len(configs), batch_size):
                out.extend(resimulate_batch(
                    trace, configs[lo:lo + batch_size]))
            return out
        from ..errors import ConstraintViolation, SimulationError
        from ..sim.incremental import resimulate

        for config in configs:
            try:
                out.append(resimulate(baseline, dict(config)))
            except (ConstraintViolation, SimulationError):
                out.append(None)
        return out

    def run_many(self, configs, *, jobs: int = 1, incremental: bool = True,
                 keep_graphs: bool = False, timeout: float | None = None,
                 max_retries: int = 3, checkpoint=None,
                 resume: bool = False, faults=None, vectorize: bool = True,
                 batch_size: int | None = None) -> list:
        """Run a batch of configurations, optionally over a process pool.

        Each config is a dict with optional keys ``engine`` (default
        ``"omnisim"``), ``executor``, ``depths``, plus any engine
        constructor kwargs.  OmniSim configs that differ only in depths
        are served by constraint-checked incremental replay of the
        cached baseline (full-run fallback; ``incremental=False`` forces
        full simulations).  With ``jobs > 1`` the batch is sharded over
        worker processes that receive the design reference and baseline
        once and compile locally — the compiled artifact is the unit of
        reuse, not the individual run.  Results come back in config
        order; simulation-level failures (deadlock, unsupported design)
        are returned as results with ``.failure`` set instead of
        aborting the batch.

        Execution is supervised (:mod:`repro.exec`): ``timeout`` bounds
        each chunk's wall-clock, crashed workers are respawned and their
        configs retried up to ``max_retries`` times before quarantine,
        and ``checkpoint``/``resume`` journal completed configs across
        interruptions.  The returned list's ``supervision`` attribute
        carries the provenance block.  ``vectorize`` (default on) serves
        incremental-eligible configs in ``batch_size``-row slices
        through the NumPy batch-retiming kernel, with per-row scalar
        fallback — identical values, each result's
        ``phase_seconds["mode"]`` records the path.  See
        :func:`repro.api.batch.run_many`.
        """
        from .batch import run_many

        return run_many(self, configs, jobs=jobs, incremental=incremental,
                        keep_graphs=keep_graphs, timeout=timeout,
                        max_retries=max_retries, checkpoint=checkpoint,
                        resume=resume, faults=faults, vectorize=vectorize,
                        batch_size=batch_size)

    def sweep(self, space, *, samples: int | None = None, seed: int = 0,
              jobs: int = 1, executor: str | None = None,
              timeout: float | None = None, max_retries: int = 3,
              checkpoint=None, resume: bool = False, faults=None,
              vectorize: bool = True, batch_size: int | None = None,
              strategy: str | None = None, max_evals: int | None = None):
        """Depth-space exploration over this session's design.

        ``space`` is a :class:`~repro.dse.DepthSpace` or a list of axis
        specs (``["fifo=1:16"]``).  Delegates to
        :func:`repro.dse.explore`, reusing this session's compiled
        design and cached baseline; returns a
        :class:`~repro.dse.SweepResult`.  The resilience knobs
        (``timeout``, ``max_retries``, ``checkpoint``/``resume``,
        ``faults``) pass through to the supervised executor, and
        ``vectorize``/``batch_size`` control the batched retiming kernel
        — see :func:`repro.dse.explore`.  ``strategy`` selects how the
        space is covered (``"exhaustive"`` default, ``"refine"``,
        ``"random"``) and ``max_evals`` bounds the total number of
        evaluated configurations — the adaptive seam for spaces too
        large to enumerate.
        """
        from ..dse import explore

        return explore(self, space, samples=samples, seed=seed, jobs=jobs,
                       executor=(executor if executor is not None
                                 else self.executor),
                       timeout=timeout, max_retries=max_retries,
                       checkpoint=checkpoint, resume=resume,
                       faults=faults, vectorize=vectorize,
                       batch_size=batch_size, strategy=strategy,
                       max_evals=max_evals)

    # -- analysis -------------------------------------------------------

    def classify(self):
        """Type A/B/C taxonomy analysis of the compiled design."""
        from ..analysis import classify

        return classify(self.compiled)

    def report(self) -> list:
        """Static C-synthesis report: one dict per module (name, block
        count, FSM states, static latency or ``"?"`` when dynamic)."""
        return [
            {
                "module": module.name,
                "blocks": len(module.function.blocks),
                "fsm_states": module.schedule.total_static_states,
                "static_latency": str(module.static_latency),
            }
            for module in self.compiled.modules
        ]

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Drop cached artifacts (the session stays usable; artifacts
        rebuild on next use)."""
        with self._lock:
            self._compiled = None
            self._baselines.clear()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "compiled" if self._compiled is not None else "lazy"
        return (f"Session({self.name!r}, params={self.params}, "
                f"{state}, baselines={sorted(self._baselines)})")
