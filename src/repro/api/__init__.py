"""``repro.api`` — the public programmatic surface of the reproduction.

The paper pitches "C speed with RTL accuracy" as a *service* a designer
iterates against; this package is that service's API.  One
:class:`Session` per design owns the cached compiled artifact and the
captured simulation graph, and every operation — single runs across all
registered engines, incremental re-simulation, batched multi-run
execution over a process pool, depth-space sweeps, taxonomy analysis —
goes through it::

    from repro.api import Session

    session = Session.open("typea_large", n=256)
    print(session.run().cycles)                      # RTL-accurate
    print(session.resimulate({"sc": 8}).cycles)      # incremental, µs
    results = session.run_many(
        [{"depths": {"sc": d}} for d in (1, 2, 4, 8)], jobs=2)

Engines are named through the formal registry re-exported here
(:func:`engine_names`, :func:`get_engine`, :func:`register_engine`) —
capability records replace hard-coded engine-name special cases.  The
CLI, the benchmark harness and ``repro.dse`` are all built on this
package; anything they can do, library callers can do directly.

The legacy entry points (``from repro.sim import OmniSimulator`` +
direct constructor calls) keep working but emit a ``DeprecationWarning``
pointing here.
"""

from ..sim.registry import (
    Engine,
    EngineInfo,
    all_engines,
    engine_names,
    get_engine,
    register_engine,
)
from ..sim.result import SimulationResult
from .batch import BatchResult, run_many
from .design_ref import compile_from_ref, resolve_design
from .session import Session

#: The stable public surface.  ``tests/test_engine_registry.py``
#: snapshots this list (plus the registered engine names): additions are
#: reviewed API growth, removals/renames are breaking changes.
__all__ = [
    "BatchResult",
    "Engine",
    "EngineInfo",
    "Session",
    "SimulationResult",
    "all_engines",
    "compile_from_ref",
    "engine_names",
    "get_engine",
    "register_engine",
    "resolve_design",
    "run_many",
]
