"""Batched multi-run execution: ship the artifact once, run everywhere.

``Session.run_many`` evaluates a list of run configurations against one
design.  Two mechanisms make a batch cheaper than a sequential
``session.run()`` loop:

* **Incremental serving.**  OmniSim configurations that differ only in
  FIFO depths are served by retiming the session's captured baseline and
  re-checking its recorded query constraints
  (:func:`repro.sim.incremental.resimulate`) — microseconds instead of a
  full Func+Perf re-simulation, with automatic fallback to a real run
  (and reference re-capture, exactly like ``repro.dse``) when a
  constraint flips.  A config that passes constraint validation provably
  leaves the recorded execution — and hence every functional output —
  unchanged, so the baseline's scalars/buffers are the config's too.
  This is the LightningSimV2/GSIM argument (the compiled model, not the
  run, is the unit of reuse) applied to batch execution; it is why
  ``run_many`` beats a ``.run()`` loop even on one core.
* **Process-pool sharding.**  With ``jobs > 1`` the batch is split into
  contiguous chunks over worker processes.  Each worker receives the
  session's small picklable *design reference* and the captured baseline
  once through the pool initializer — shipped as the columnar trace
  artifact (CSR static-edge columns included, so no worker rebuilds
  them) plus the functional outputs served results inherit; the design
  is compiled in a worker only if one of its configurations actually
  needs a full run.

Failure semantics: a configuration that deadlocks or is unsupported by
its engine produces a :class:`~repro.sim.result.SimulationResult` with
``.failure`` set (and ``cycles`` at the deadlock point) instead of
aborting the whole batch — batch callers are sweeps and services, not
interactive debugging.

Results come back **in config order**.  Each result's
``phase_seconds["serving"]`` records which path produced it
(``"incremental"`` or ``"full"``).  By default the recorded simulation
graph / constraints / FIFO channel tables are stripped from returned
results (``keep_graphs=False``): they dominate pickle size (~250 KB per
typea run) and batch callers want numbers, not replay state.
"""

from __future__ import annotations

import dataclasses
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor

from ..errors import (
    ConstraintViolation,
    DeadlockError,
    SimulationError,
    UnsupportedDesignError,
)
from ..sim.incremental import resimulate
from ..sim.registry import get_engine, run_engine, validate_depths
from ..sim.result import SimulationResult
from .design_ref import compile_from_ref

#: config keys consumed by the batch layer itself; everything else in a
#: config dict forwards to the engine constructor
_CONFIG_KEYS = ("engine", "executor", "depths")


def normalize_config(config: dict, compiled) -> dict:
    """Validate one run configuration eagerly (before any pool spawns).

    Returns a normalized ``{"engine", "executor", "depths", "kwargs"}``
    dict.  Unknown engines raise
    :class:`~repro.errors.UnknownEngineError`; depth overrides are
    validated against the design exactly as ``Session.run`` would.
    """
    if not isinstance(config, dict):
        raise TypeError(
            f"run_many configs must be dicts, got {type(config).__name__}"
        )
    engine = config.get("engine", "omnisim")
    get_engine(engine)  # raises UnknownEngineError with the known list
    depths = validate_depths(compiled, config.get("depths"))
    kwargs = {k: v for k, v in config.items() if k not in _CONFIG_KEYS}
    return {
        "engine": engine,
        "executor": config.get("executor"),
        "depths": depths,
        "kwargs": kwargs,
    }


def _strip_replay_state(result: SimulationResult) -> SimulationResult:
    """Drop the heavy incremental-replay attachments from a result."""
    result.graph = None
    result.constraints = []
    result.fifo_channels = {}
    result.trace = None
    return result


def _portable_baseline(baseline, keep_graphs: bool):
    """The baseline form shipped to pool workers.

    The columnar trace artifact (static-edge columns pre-built, so
    workers never rebuild them) plus the functional outputs served
    results inherit; the object graph / constraint list / channel
    tables travel only when the caller asked to ``keep_graphs``.
    """
    from ..trace.columnar import replay_trace

    trace = replay_trace(baseline)
    if trace is not None:
        trace.ensure_static()
    if keep_graphs or trace is None:
        return baseline
    return dataclasses.replace(baseline, graph=None, constraints=[],
                               fifo_channels={})


class _BatchRunner:
    """Serves one shard of a batch against a mutable reference run.

    Mirrors the ``repro.dse`` Evaluator: incremental-first against the
    captured reference, full re-simulation (with reference re-capture)
    on constraint divergence.
    """

    def __init__(self, compile_fn, base_depths: dict, baseline=None):
        self._compile_fn = compile_fn
        self._compiled = None
        self.base_depths = dict(base_depths)
        #: most recent *full* captured run (functional outputs + graph),
        #: replaced on every fallback re-capture; None disables
        #: incremental serving.  Served results inherit this run's
        #: functional outputs: constraint validation proves the recorded
        #: execution — hence every value — is exactly what a fresh run
        #: at the served depths would produce (paper section 7.2).
        self.reference = baseline

    @property
    def compiled(self):
        """The compiled design, built on first use (full runs only)."""
        if self._compiled is None:
            self._compiled = self._compile_fn()
        return self._compiled

    def _serve_incremental(self, config: dict,
                           keep_graphs: bool) -> SimulationResult | None:
        """Try to serve ``config`` from the captured reference; None
        means a full run is required."""
        if self.reference is None:
            return None
        if config["engine"] != "omnisim" or config["kwargs"]:
            # Executor choice doesn't gate eligibility: incremental
            # replay re-runs no Func Sim code at all.
            return None
        # Always overlay the *design's* declared depths, not the
        # reference's: after a re-capture the reference was recorded at
        # some other config's depths, and resimulate() fills unmentioned
        # FIFOs from its reference.  The full map keeps configs
        # independent of shard evaluation order.
        depths = dict(self.base_depths)
        depths.update(config["depths"])
        start = _time.perf_counter()
        try:
            inc = resimulate(self.reference, depths)
        except (ConstraintViolation, SimulationError):
            # Flipped constraint, or the graph went cyclic under these
            # depths; a real run decides what actually happens there.
            return None
        base = self.reference
        return SimulationResult(
            design_name=base.design_name,
            simulator="omnisim",
            cycles=inc.cycles,
            scalars=dict(base.scalars),
            buffers={k: list(v) for k, v in base.buffers.items()},
            axi_memories={k: list(v) for k, v in base.axi_memories.items()},
            module_end_times=dict(inc.module_end_times),
            fifo_leftovers=dict(base.fifo_leftovers),
            stats=dataclasses.replace(base.stats),
            execute_seconds=_time.perf_counter() - start,
            frontend_seconds=0.0,
            warnings=list(base.warnings),
            phase_seconds={"serving": "incremental",
                           "replay_seconds": inc.seconds},
            # Attaching replay state costs a constraints-list copy per
            # served config; skip it when the caller strips it anyway.
            graph=base.graph if keep_graphs else None,
            constraints=list(base.constraints) if keep_graphs else [],
            fifo_channels=(dict(base.fifo_channels) if keep_graphs
                           else {}),
            trace=base.trace if keep_graphs else None,
        )

    def run_config(self, config: dict,
                   keep_graphs: bool) -> SimulationResult:
        """Run one normalized config; fold simulation-level failures
        into the result instead of raising."""
        result = self._serve_incremental(config, keep_graphs)
        if result is None:
            try:
                result = run_engine(config["engine"], self.compiled,
                                    depths=config["depths"] or None,
                                    executor=config["executor"],
                                    **config["kwargs"])
                result.phase_seconds["serving"] = "full"
                if (self.reference is not None
                        and config["engine"] == "omnisim"
                        and result.graph is not None):
                    # Re-capture: this run's graph serves its
                    # neighbourhood in the rest of the shard.
                    self.reference = result
            except DeadlockError as exc:
                result = SimulationResult(
                    design_name=self.compiled.name,
                    simulator=config["engine"],
                    cycles=exc.cycle,
                    failure=str(exc),
                    phase_seconds={"serving": "full"},
                )
            except UnsupportedDesignError as exc:
                result = SimulationResult(
                    design_name=self.compiled.name,
                    simulator=config["engine"],
                    cycles=0,
                    failure=str(exc),
                    phase_seconds={"serving": "full"},
                )
        if not keep_graphs:
            if result is self.reference:
                # The shard still replays against this run: strip a
                # copy, keep the reference intact.
                result = dataclasses.replace(result)
            _strip_replay_state(result)
        return result


# ---------------------------------------------------------------------------
# process-pool plumbing.  Module-level state because ProcessPoolExecutor
# tasks can only reach module globals; one runner per worker, built from
# the design reference + baseline shipped via the initializer.

_WORKER_RUNNER: _BatchRunner | None = None


def _init_worker(design_ref, base_depths, baseline) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = _BatchRunner(
        lambda: compile_from_ref(design_ref), base_depths, baseline
    )


def _run_chunk(payload) -> list:
    configs, keep_graphs = payload
    return [_WORKER_RUNNER.run_config(config, keep_graphs)
            for config in configs]


def chunk_contiguous(items: list, pieces: int) -> list:
    """Split into at most ``pieces`` contiguous runs of near-equal size
    (contiguity preserves config-list locality within one worker)."""
    pieces = max(1, min(pieces, len(items)))
    size, rem = divmod(len(items), pieces)
    chunks, cursor = [], 0
    for i in range(pieces):
        step = size + (1 if i < rem else 0)
        chunks.append(items[cursor:cursor + step])
        cursor += step
    return chunks


# ---------------------------------------------------------------------------


def run_many(session, configs, *, jobs: int = 1, incremental: bool = True,
             keep_graphs: bool = False) -> list:
    """Evaluate ``configs`` against ``session``'s design (see
    :meth:`repro.api.Session.run_many` for the config schema).

    ``incremental=False`` forces a full simulation per configuration
    (differential testing of the serving path itself).  Every config is
    validated up front, so a typo in config 37 of 200 fails before any
    work starts.  Ad-hoc designs that cannot cross the process boundary
    (unpicklable ``@hls.kernel`` closures under spawn-style start
    methods) degrade to in-process evaluation rather than crashing
    platform-dependently.
    """
    compiled = session.compiled
    normalized = [normalize_config(config, compiled) for config in configs]
    if not normalized:
        return []
    # Capture (or reuse) the baseline only when some config can actually
    # be served from it.  A design that deadlocks at its declared depths
    # has no baseline to replay; serve every config with a full run and
    # let the per-config failure folding report the deadlocks.
    needs_baseline = incremental and any(
        c["engine"] == "omnisim" and not c["kwargs"] for c in normalized
    )
    baseline = None
    if needs_baseline:
        try:
            baseline = session.baseline()
        except DeadlockError:
            baseline = None
    base_depths = compiled.stream_depths()

    jobs = max(1, min(jobs, len(normalized)))
    if jobs > 1 and session.design_ref[0] == "compiled":
        try:
            pickle.dumps(compiled)
        except Exception:
            jobs = 1
    if jobs == 1:
        runner = _BatchRunner(lambda: compiled, base_depths, baseline)
        return [runner.run_config(config, keep_graphs)
                for config in normalized]
    # 4 chunks per worker: balance against stragglers (engines differ
    # wildly in cost — a cosim run is orders slower than an incremental
    # replay) while keeping shards contiguous for re-capture locality.
    chunks = chunk_contiguous(normalized, jobs * 4)
    shipped = (None if baseline is None
               else _portable_baseline(baseline, keep_graphs))
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(session.design_ref, base_depths, shipped),
    ) as pool:
        payloads = [(chunk, keep_graphs) for chunk in chunks]
        return [result
                for chunk_results in pool.map(_run_chunk, payloads)
                for result in chunk_results]
