"""Batched multi-run execution: ship the artifact once, run everywhere.

``Session.run_many`` evaluates a list of run configurations against one
design.  Two mechanisms make a batch cheaper than a sequential
``session.run()`` loop:

* **Incremental serving.**  OmniSim configurations that differ only in
  FIFO depths are served by retiming the session's captured baseline and
  re-checking its recorded query constraints
  (:func:`repro.sim.incremental.resimulate`) — microseconds instead of a
  full Func+Perf re-simulation, with automatic fallback to a real run
  (and reference re-capture, exactly like ``repro.dse``) when a
  constraint flips.  A config that passes constraint validation provably
  leaves the recorded execution — and hence every functional output —
  unchanged, so the baseline's scalars/buffers are the config's too.
  This is the LightningSimV2/GSIM argument (the compiled model, not the
  run, is the unit of reuse) applied to batch execution; it is why
  ``run_many`` beats a ``.run()`` loop even on one core.
* **Process-pool sharding.**  With ``jobs > 1`` the batch is split into
  contiguous chunks over worker processes.  Each worker receives the
  session's small picklable *design reference* and the captured baseline
  once through the pool initializer — shipped as the columnar trace
  artifact (CSR static-edge columns included, so no worker rebuilds
  them) plus the functional outputs served results inherit; the design
  is compiled in a worker only if one of its configurations actually
  needs a full run.

Failure semantics: a configuration that deadlocks or is unsupported by
its engine produces a :class:`~repro.sim.result.SimulationResult` with
``.failure`` set (and ``cycles`` at the deadlock point) instead of
aborting the whole batch — batch callers are sweeps and services, not
interactive debugging.

Results come back **in config order**.  Each result's
``phase_seconds["serving"]`` records which path produced it
(``"incremental"``, ``"full"``, or ``"quarantined"``).  By default the
recorded simulation graph / constraints / FIFO channel tables are
stripped from returned results (``keep_graphs=False``): they dominate
pickle size (~250 KB per typea run) and batch callers want numbers, not
replay state.

Both execution paths run under the supervised executor
(:mod:`repro.exec`): worker crashes respawn the pool and retry with
backoff, hung chunks die at the ``timeout`` deadline, a config that
keeps failing alone is quarantined as a result with ``.failure`` set,
and ``checkpoint=``/``resume=`` journal completed configs so an
interrupted batch re-runs only what is missing.  The returned
:class:`BatchResult` (a plain ``list`` of results) carries the
``supervision`` provenance block.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
import time as _time
from concurrent.futures import ProcessPoolExecutor

from ..errors import (
    ConstraintViolation,
    DeadlockError,
    SimulationError,
    UnsupportedDesignError,
)
from ..exec.supervisor import chunk_contiguous  # noqa: F401  (re-export;
#   historical home of this helper — tests and callers import it here)
from ..sim.incremental import resimulate
from ..sim.registry import get_engine, run_engine, validate_depths
from ..sim.result import SimulationResult, SimulationStats
from .design_ref import compile_from_ref

#: config keys consumed by the batch layer itself; everything else in a
#: config dict forwards to the engine constructor
_CONFIG_KEYS = ("engine", "executor", "depths")


def normalize_config(config: dict, compiled) -> dict:
    """Validate one run configuration eagerly (before any pool spawns).

    Returns a normalized ``{"engine", "executor", "depths", "kwargs"}``
    dict.  Unknown engines raise
    :class:`~repro.errors.UnknownEngineError`; depth overrides are
    validated against the design exactly as ``Session.run`` would.
    """
    if not isinstance(config, dict):
        raise TypeError(
            f"run_many configs must be dicts, got {type(config).__name__}"
        )
    engine = config.get("engine", "omnisim")
    get_engine(engine)  # raises UnknownEngineError with the known list
    depths = validate_depths(compiled, config.get("depths"))
    kwargs = {k: v for k, v in config.items() if k not in _CONFIG_KEYS}
    return {
        "engine": engine,
        "executor": config.get("executor"),
        "depths": depths,
        "kwargs": kwargs,
    }


def _strip_replay_state(result: SimulationResult) -> SimulationResult:
    """Drop the heavy incremental-replay attachments from a result."""
    result.graph = None
    result.constraints = []
    result.fifo_channels = {}
    result.trace = None
    return result


def _portable_baseline(baseline, keep_graphs: bool):
    """The baseline form shipped to pool workers.

    The columnar trace artifact (static-edge columns pre-built, so
    workers never rebuild them) plus the functional outputs served
    results inherit; the object graph / constraint list / channel
    tables travel only when the caller asked to ``keep_graphs``.
    """
    from ..trace.columnar import replay_trace

    trace = replay_trace(baseline)
    if trace is not None:
        trace.ensure_static()
    if keep_graphs or trace is None:
        return baseline
    return dataclasses.replace(baseline, graph=None, constraints=[],
                               fifo_channels={})


class _BatchRunner:
    """Serves one shard of a batch against a mutable reference run.

    Mirrors the ``repro.dse`` Evaluator: incremental-first against the
    captured reference, full re-simulation (with reference re-capture)
    on constraint divergence.
    """

    def __init__(self, compile_fn, base_depths: dict, baseline=None):
        self._compile_fn = compile_fn
        self._compiled = None
        self.base_depths = dict(base_depths)
        #: most recent *full* captured run (functional outputs + graph),
        #: replaced on every fallback re-capture; None disables
        #: incremental serving.  Served results inherit this run's
        #: functional outputs: constraint validation proves the recorded
        #: execution — hence every value — is exactly what a fresh run
        #: at the served depths would produce (paper section 7.2).
        self.reference = baseline

    @property
    def compiled(self):
        """The compiled design, built on first use (full runs only)."""
        if self._compiled is None:
            self._compiled = self._compile_fn()
        return self._compiled

    def _served_result(self, inc, elapsed: float, keep_graphs: bool,
                       mode: str) -> SimulationResult:
        """Build the served :class:`SimulationResult` for one validated
        incremental replay (scalar or vectorized) of the reference."""
        base = self.reference
        return SimulationResult(
            design_name=base.design_name,
            simulator="omnisim",
            cycles=inc.cycles,
            scalars=dict(base.scalars),
            buffers={k: list(v) for k, v in base.buffers.items()},
            axi_memories={k: list(v) for k, v in base.axi_memories.items()},
            module_end_times=dict(inc.module_end_times),
            fifo_leftovers=dict(base.fifo_leftovers),
            stats=dataclasses.replace(base.stats),
            execute_seconds=elapsed,
            frontend_seconds=0.0,
            warnings=list(base.warnings),
            phase_seconds={"serving": "incremental",
                           "replay_seconds": inc.seconds,
                           "mode": mode},
            # Attaching replay state costs a constraints-list copy per
            # served config; skip it when the caller strips it anyway.
            graph=base.graph if keep_graphs else None,
            constraints=list(base.constraints) if keep_graphs else [],
            fifo_channels=(dict(base.fifo_channels) if keep_graphs
                           else {}),
            trace=base.trace if keep_graphs else None,
        )

    def _serve_incremental(self, config: dict, keep_graphs: bool,
                           mode: str = "scalar"
                           ) -> SimulationResult | None:
        """Try to serve ``config`` from the captured reference; None
        means a full run is required."""
        if self.reference is None:
            return None
        if config["engine"] != "omnisim" or config["kwargs"]:
            # Executor choice doesn't gate eligibility: incremental
            # replay re-runs no Func Sim code at all.
            return None
        # Always overlay the *design's* declared depths, not the
        # reference's: after a re-capture the reference was recorded at
        # some other config's depths, and resimulate() fills unmentioned
        # FIFOs from its reference.  The full map keeps configs
        # independent of shard evaluation order.
        depths = dict(self.base_depths)
        depths.update(config["depths"])
        start = _time.perf_counter()
        try:
            inc = resimulate(self.reference, depths)
        except (ConstraintViolation, SimulationError):
            # Flipped constraint, or the graph went cyclic under these
            # depths; a real run decides what actually happens there.
            return None
        return self._served_result(inc, _time.perf_counter() - start,
                                   keep_graphs, mode)

    def run_config(self, config: dict, keep_graphs: bool,
                   _mode: str = "scalar") -> SimulationResult:
        """Run one normalized config; fold simulation-level failures
        into the result instead of raising."""
        result = self._serve_incremental(config, keep_graphs, _mode)
        if result is None:
            try:
                result = run_engine(config["engine"], self.compiled,
                                    depths=config["depths"] or None,
                                    executor=config["executor"],
                                    **config["kwargs"])
                result.phase_seconds["serving"] = "full"
                result.phase_seconds["mode"] = "full"
                if (self.reference is not None
                        and config["engine"] == "omnisim"
                        and result.graph is not None):
                    # Re-capture: this run's graph serves its
                    # neighbourhood in the rest of the shard.
                    self.reference = result
            except DeadlockError as exc:
                result = SimulationResult(
                    design_name=self.compiled.name,
                    simulator=config["engine"],
                    cycles=exc.cycle,
                    failure=str(exc),
                    phase_seconds={"serving": "full", "mode": "full"},
                )
            except UnsupportedDesignError as exc:
                result = SimulationResult(
                    design_name=self.compiled.name,
                    simulator=config["engine"],
                    cycles=0,
                    failure=str(exc),
                    phase_seconds={"serving": "full", "mode": "full"},
                )
        if not keep_graphs:
            if result is self.reference:
                # The shard still replays against this run: strip a
                # copy, keep the reference intact.
                result = dataclasses.replace(result)
            _strip_replay_state(result)
        return result

    def run_configs(self, configs: list, keep_graphs: bool
                    ) -> list[SimulationResult]:
        """Evaluate a slice of configs in order, serving eligible rows
        through the vectorized batch kernel
        (:func:`repro.trace.vectorized.resimulate_batch`) in one matrix
        sweep.  Ineligible rows — and every row the kernel declines
        (constraint flip, depth outside the kernel's safe range, NumPy
        unavailable) — take the scalar :meth:`run_config` path one at a
        time, producing bit-for-bit identical values."""
        from ..trace.columnar import replay_trace
        from ..trace.vectorized import batch_supported, resimulate_batch

        served: list = [None] * len(configs)
        trace = (replay_trace(self.reference)
                 if self.reference is not None else None)
        eligible = {i for i, c in enumerate(configs)
                    if c["engine"] == "omnisim" and not c["kwargs"]}
        batched = (trace is not None and len(eligible) > 1
                   and batch_supported(trace))
        if batched:
            order = sorted(eligible)
            maps = []
            for i in order:
                depths = dict(self.base_depths)
                depths.update(configs[i]["depths"])
                maps.append(depths)
            start = _time.perf_counter()
            rows = resimulate_batch(trace, maps)
            elapsed = (_time.perf_counter() - start) / len(order)
            for i, inc in zip(order, rows):
                if inc is not None:
                    served[i] = self._served_result(
                        inc, elapsed, keep_graphs, mode="vectorized")
        out = []
        for i, config in enumerate(configs):
            if served[i] is not None:
                out.append(served[i])
            else:
                # "scalar-fallback" marks a row the kernel looked at and
                # declined; rows the batch never covered stay "scalar".
                mode = ("scalar-fallback"
                        if batched and i in eligible else "scalar")
                out.append(self.run_config(config, keep_graphs, mode))
        return out


# ---------------------------------------------------------------------------
# process-pool plumbing.  Module-level state because ProcessPoolExecutor
# tasks can only reach module globals; one runner per worker, built from
# the design reference + baseline shipped via the initializer.

_WORKER_RUNNER: _BatchRunner | None = None
_WORKER_KEEP_GRAPHS = False
_WORKER_BATCH_SIZE = 0


def _init_worker(design_ref, base_depths, baseline,
                 keep_graphs: bool = False, batch_size: int = 0) -> None:
    global _WORKER_RUNNER, _WORKER_KEEP_GRAPHS, _WORKER_BATCH_SIZE
    _WORKER_RUNNER = _BatchRunner(
        lambda: compile_from_ref(design_ref), base_depths, baseline
    )
    _WORKER_KEEP_GRAPHS = keep_graphs
    _WORKER_BATCH_SIZE = batch_size


def _run_chunk(wire) -> list:
    """Supervised wire format: ``[(config, fault_directive), ...]``.

    Fault directives segment the chunk: everything before a directive is
    flushed (batched through :meth:`_BatchRunner.run_configs` when the
    worker was initialized with a batch size) so the fault lands exactly
    where sequential evaluation would put it."""
    from ..exec.faults import apply_fault

    results: list = []
    segment: list = []

    def flush():
        if not segment:
            return
        if _WORKER_BATCH_SIZE > 1:
            for lo in range(0, len(segment), _WORKER_BATCH_SIZE):
                results.extend(_WORKER_RUNNER.run_configs(
                    segment[lo:lo + _WORKER_BATCH_SIZE],
                    _WORKER_KEEP_GRAPHS))
        else:
            for config in segment:
                results.append(_WORKER_RUNNER.run_config(
                    config, _WORKER_KEEP_GRAPHS))
        del segment[:]

    for config, directive in wire:
        if directive is not None:
            flush()
            apply_fault(directive)
        segment.append(config)
    flush()
    return results


# ---------------------------------------------------------------------------
# checkpoint journaling: a stripped SimulationResult is JSON-shaped (the
# heavy replay state never journals), so completed configs round-trip
# through the append-only journal losslessly.

_REPLAY_FIELDS = ("graph", "constraints", "fifo_channels", "trace")


def _result_to_json(result: SimulationResult) -> dict:
    doc = {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name not in _REPLAY_FIELDS and f.name != "stats"
    }
    doc["stats"] = dataclasses.asdict(result.stats)
    return doc


def _result_from_json(doc: dict) -> SimulationResult:
    doc = dict(doc)
    stats = SimulationStats(**doc.pop("stats", {}))
    return SimulationResult(stats=stats, **doc)


def _config_key(index: int, normalized: dict) -> str:
    """Journal key for one config: position + content fingerprint (the
    same config may legitimately appear twice in a batch)."""
    canonical = json.dumps(normalized, sort_keys=True, default=repr)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return f"{index}:{digest}"


class BatchResult(list):
    """``run_many``'s return value: results in config order (a plain
    ``list``), plus the supervised-execution provenance block
    (:class:`repro.exec.SupervisionReport` JSON with ``resumed`` /
    ``checkpoint`` merged in; ``None`` only on the empty batch)."""

    supervision: dict | None = None


# ---------------------------------------------------------------------------


def run_many(session, configs, *, jobs: int = 1, incremental: bool = True,
             keep_graphs: bool = False, timeout: float | None = None,
             max_retries: int = 3, checkpoint=None, resume: bool = False,
             faults=None, vectorize: bool = True,
             batch_size: int | None = None) -> BatchResult:
    """Evaluate ``configs`` against ``session``'s design (see
    :meth:`repro.api.Session.run_many` for the config schema).

    ``incremental=False`` forces a full simulation per configuration
    (differential testing of the serving path itself).  Every config is
    validated up front, so a typo in config 37 of 200 fails before any
    work starts.  Ad-hoc designs that cannot cross the process boundary
    (unpicklable ``@hls.kernel`` closures under spawn-style start
    methods) degrade to in-process evaluation rather than crashing
    platform-dependently.

    Resilience knobs mirror :func:`repro.dse.explore`: ``timeout``
    (per-chunk wall-clock deadline), ``max_retries`` (failures one
    config may accrue before being quarantined as a result with
    ``.failure`` set), ``checkpoint``/``resume`` (append-only journal of
    completed configs; resuming re-runs only what is missing — requires
    ``keep_graphs=False``, replay state never journals) and ``faults``
    (deterministic injection; default: ``REPRO_FAULTS``).  Returns a
    :class:`BatchResult` whose ``supervision`` attribute is the
    provenance block.

    ``vectorize`` (default on) serves incremental-eligible configs in
    ``batch_size``-row slices through the NumPy batch-retiming kernel
    (:mod:`repro.trace.vectorized`); rows the kernel declines fall back
    to the scalar path with bit-for-bit identical values.  Each result's
    ``phase_seconds["mode"]`` records which path evaluated it
    (``"vectorized"`` / ``"scalar"`` / ``"scalar-fallback"`` /
    ``"full"``).  ``vectorize=False`` pins every config to the scalar
    path.  Checkpoint/journal granularity stays per config either way.
    """
    from ..exec import (
        CheckpointJournal,
        ExecPolicy,
        Supervisor,
        Unit,
        resolve_plan,
        run_serial,
    )

    from ..trace.vectorized import DEFAULT_BATCH_SIZE

    if checkpoint is not None and keep_graphs:
        raise ValueError(
            "run_many(checkpoint=...) requires keep_graphs=False: replay "
            "state (graphs/constraints/traces) cannot be journaled"
        )
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    effective_batch = batch_size if (vectorize and incremental) else 0
    fault_plan = resolve_plan(faults)
    policy = ExecPolicy(timeout=timeout, max_retries=max_retries)
    compiled = session.compiled
    normalized = [normalize_config(config, compiled) for config in configs]
    if not normalized:
        return BatchResult()
    # Capture (or reuse) the baseline only when some config can actually
    # be served from it.  A design that deadlocks at its declared depths
    # has no baseline to replay; serve every config with a full run and
    # let the per-config failure folding report the deadlocks.
    needs_baseline = incremental and any(
        c["engine"] == "omnisim" and not c["kwargs"] for c in normalized
    )
    baseline = None
    if needs_baseline:
        try:
            baseline = session.baseline()
        except DeadlockError:
            baseline = None
    base_depths = compiled.stream_depths()

    jobs = max(1, min(jobs, len(normalized)))
    if jobs > 1 and session.design_ref[0] == "compiled":
        try:
            pickle.dumps(compiled)
        except Exception:
            jobs = 1

    units = [Unit(i, _config_key(i, config), config)
             for i, config in enumerate(normalized)]

    journal = None
    restored = {}
    if checkpoint is not None:
        identity = {
            "kind": "run_many",
            "design": compiled.name,
            "digest": session.trace_digest(),
            "configs": hashlib.sha256("\n".join(
                u.key for u in units).encode("utf-8")).hexdigest()[:16],
            "count": len(units),
            "incremental": incremental,
        }
        journal, restored = CheckpointJournal.open(checkpoint, identity,
                                                   resume=resume)

    def quarantined_result(config, detail):
        return SimulationResult(
            design_name=compiled.name,
            simulator=config["engine"],
            cycles=0,
            failure=(f"quarantined after {detail['attempts']} attempts: "
                     f"{detail['reason']}: {detail['message']}"),
            phase_seconds={"serving": "quarantined"},
        )

    results_by_index: dict = {}
    pending = []
    for unit in units:
        doc = restored.get(unit.key)
        if doc is not None:
            results_by_index[unit.index] = _result_from_json(doc)
        else:
            pending.append(unit)
    resumed = len(units) - len(pending)

    def record(unit, status, value):
        if journal is None:
            return
        result = (value if status == "ok"
                  else quarantined_result(unit.payload, value))
        journal.append(unit.key, _result_to_json(result))

    try:
        if jobs == 1:
            runner = _BatchRunner(lambda: compiled, base_depths, baseline)
            results, report = run_serial(
                pending,
                lambda config: runner.run_config(config, keep_graphs),
                policy=policy, fault_plan=fault_plan, record=record,
                run_batch=(
                    (lambda cfgs: runner.run_configs(cfgs, keep_graphs))
                    if effective_batch > 1 else None),
                batch_size=effective_batch,
            )
        else:
            shipped = (None if baseline is None
                       else _portable_baseline(baseline, keep_graphs))
            def pool_factory():
                return ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=_init_worker,
                    initargs=(session.design_ref, base_depths, shipped,
                              keep_graphs, effective_batch),
                )
            supervisor = Supervisor(
                pool_factory, _run_chunk, jobs=jobs, policy=policy,
                fault_plan=fault_plan, record=record,
            )
            results, report = supervisor.run(pending)
    finally:
        if journal is not None:
            journal.close()

    for index, (status, value) in results.items():
        results_by_index[index] = (value if status == "ok"
                                   else quarantined_result(
                                       normalized[index], value))
    out = BatchResult(results_by_index[i] for i in range(len(normalized)))
    supervision = report.to_json()
    supervision["resumed"] = resumed
    supervision["checkpoint"] = (str(checkpoint)
                                 if checkpoint is not None else None)
    out.supervision = supervision
    return out
