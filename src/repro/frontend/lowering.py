"""AST-to-IR lowering: the core of the HLS front-end.

Supports the restricted Python subset that maps onto synthesizable C:

* integer/fixed/float arithmetic, comparisons, boolean logic, selects;
* ``if``/``elif``/``else``, ``for i in range(...)``, ``while``, ``break``,
  ``continue``, ``return``, ``assert``;
* FIFO endpoint methods: ``read``, ``write``, ``read_nb``, ``write_nb``,
  ``empty``, ``full``;
* AXI master methods: ``read_req``, ``read``, ``write_req``, ``write``,
  ``write_resp``;
* scalar output registers: ``get``/``set``; local arrays via ``hls.array``;
* pragmas ``hls.pipeline(ii=...)`` and ``hls.trip_count(n)`` as the first
  statements of a loop body;
* calls to other ``@hls.kernel`` functions, which are inlined.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..errors import CompileError, TypeCheckError
from ..hls import ports as port_decls
from ..hls.kernel import Kernel
from ..ir import instructions as ins
from ..ir import types as ty
from ..ir.builder import IRBuilder
from ..ir.function import LoopMeta
from ..ir.values import Argument, Constant, Value
from . import symbols as sym

_CMP_MAP = {
    ast.Eq: "eq", ast.NotEq: "ne", ast.Lt: "lt",
    ast.LtE: "le", ast.Gt: "gt", ast.GtE: "ge",
}

_BIN_MAP = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul",
    ast.Div: "div", ast.FloorDiv: "div", ast.Mod: "rem",
    ast.BitAnd: "and", ast.BitOr: "or", ast.BitXor: "xor",
    ast.LShift: "shl",
}


@dataclass
class LoopContext:
    """break/continue targets for the innermost lexical loop."""

    header: object
    exit: object
    continue_target: object
    meta: LoopMeta


@dataclass
class InlineFrame:
    """State for lowering an inlined kernel call."""

    kernel_name: str
    return_slot: Value | None
    return_block: object
    returned: bool = False


class KernelLowering:
    """Lowers one kernel function (plus inlined callees) to IR."""

    MAX_INLINE_DEPTH = 16

    def __init__(self, kernel: Kernel, const_bindings: dict, function,
                 arguments: dict):
        self.kernel = kernel
        self.function = function
        self.builder = IRBuilder(function)
        self.globals = dict(getattr(kernel.fn, "__globals__", {}))
        closure = getattr(kernel.fn, "__closure__", None)
        if closure:
            freevars = kernel.fn.__code__.co_freevars
            for name, cell in zip(freevars, closure):
                self.globals[name] = cell.cell_contents
        self.scope: dict[str, sym.Symbol] = {}
        self.loop_stack: list[LoopContext] = []
        self.inline_stack: list[InlineFrame] = []
        self._active_loops: list[LoopMeta] = []
        self._bind_parameters(const_bindings, arguments)

    # ------------------------------------------------------------------
    # setup

    def _bind_parameters(self, const_bindings: dict, arguments: dict):
        for pname, decl in self.kernel.ports.items():
            if isinstance(decl, (port_decls.Const, port_decls.In)):
                value = const_bindings[pname]
                self.scope[pname] = sym.ValueSymbol(
                    Constant(decl.element, value)
                )
                continue
            arg = arguments[pname]
            self.scope[pname] = self._symbol_for_port(decl, arg)

    @staticmethod
    def _symbol_for_port(decl, arg: Argument) -> sym.Symbol:
        if isinstance(decl, port_decls.StreamIn):
            return sym.StreamSymbol(arg, "in")
        if isinstance(decl, port_decls.StreamOut):
            return sym.StreamSymbol(arg, "out")
        if isinstance(decl, port_decls.Buffer):
            return sym.ArraySymbol(arg, arg.type, decl.writable)
        if isinstance(decl, port_decls.ScalarOut):
            return sym.ScalarOutSymbol(arg, decl.element)
        if isinstance(decl, port_decls.AxiMaster):
            return sym.AxiSymbol(arg)
        raise CompileError(f"unsupported port declaration {decl!r}")

    def err(self, message: str, node=None) -> CompileError:
        return CompileError(message, node=node, kernel=self.kernel.name)

    # ------------------------------------------------------------------
    # entry point

    def lower(self, body: list[ast.stmt]) -> None:
        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)
        self.lower_statements(body)
        if not self.builder.is_terminated:
            self.builder.ret()

    # ------------------------------------------------------------------
    # blocks & loops bookkeeping

    def new_block(self, label: str = ""):
        block = self.builder.new_block(label)
        if self._active_loops:
            innermost = self._active_loops[-1]
            block.loop = innermost
            for loop in self._active_loops:
                loop.blocks.add(block)
        return block

    # ------------------------------------------------------------------
    # statements

    def lower_statements(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            if self.builder.is_terminated:
                # Unreachable trailing code (e.g. after return/break).
                break
            self.lower_statement(statement)

    def lower_statement(self, node: ast.stmt) -> None:
        method = getattr(self, f"_stmt_{type(node).__name__}", None)
        if method is None:
            raise self.err(
                f"unsupported statement {type(node).__name__}", node
            )
        method(node)

    def _stmt_Pass(self, node):
        pass

    def _stmt_Expr(self, node: ast.Expr):
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return  # docstring
        if isinstance(value, ast.Call):
            self.lower_call(value, result_used=False)
            return
        raise self.err("expression statement has no effect", node)

    def _stmt_Assign(self, node: ast.Assign):
        if len(node.targets) != 1:
            raise self.err("chained assignment is not supported", node)
        target = node.targets[0]
        if isinstance(target, ast.Tuple):
            self._lower_tuple_assign(target, node.value, node)
            return
        rhs_array = self._try_local_array_decl(node.value)
        if rhs_array is not None:
            if not isinstance(target, ast.Name):
                raise self.err("hls.array target must be a simple name", node)
            array_type, init = rhs_array
            slot = self.builder.alloca(array_type, target.id)
            self.scope[target.id] = sym.ArraySymbol(slot, array_type)
            if init is not None:
                for i, item in enumerate(init):
                    self.builder.store(
                        slot, Constant(array_type.element, item),
                        Constant(ty.i32, i),
                    )
            return
        value = self.lower_expr(node.value)
        self._assign_to(target, value, node)

    def _stmt_AnnAssign(self, node: ast.AnnAssign):
        if not isinstance(node.target, ast.Name):
            raise self.err("annotated assignment target must be a name", node)
        declared = self._resolve_type(node.annotation, node)
        value = (self.lower_expr(node.value) if node.value is not None
                 else Constant(declared, 0))
        name = node.target.id
        slot = self.builder.alloca(declared, name)
        self.scope[name] = sym.VarSymbol(slot, declared)
        self.builder.store(slot, self.builder.coerce(value, declared))

    def _stmt_AugAssign(self, node: ast.AugAssign):
        op = _BIN_MAP.get(type(node.op))
        if op is None and isinstance(node.op, ast.RShift):
            op = "rshift"
        if op is None:
            raise self.err(
                f"unsupported augmented op {type(node.op).__name__}", node
            )
        current = self._read_target(node.target, node)
        rhs = self.lower_expr(node.value)
        result = self._emit_binop(op, current, rhs, node)
        self._assign_to(node.target, result, node)

    def _read_target(self, target, node) -> Value:
        if isinstance(target, ast.Name):
            return self._load_name(target.id, node)
        if isinstance(target, ast.Subscript):
            return self._lower_subscript_load(target)
        raise self.err("unsupported assignment target", node)

    def _assign_to(self, target, value: Value, node) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            symbol = self.scope.get(name)
            if symbol is None:
                slot = self.builder.alloca(value.type, name)
                self.scope[name] = sym.VarSymbol(slot, value.type)
                self.builder.store(slot, value)
            elif isinstance(symbol, sym.VarSymbol):
                self.builder.store(symbol.slot, value)
            else:
                raise self.err(f"cannot assign to {name!r}", node)
            return
        if isinstance(target, ast.Subscript):
            storage, index, elem, writable = self._subscript_ref(target)
            if not writable:
                raise self.err("store to read-only buffer", node)
            self.builder.store(storage, value, index)
            return
        raise self.err("unsupported assignment target", node)

    def _lower_tuple_assign(self, target: ast.Tuple, value_node, node):
        """``ok, v = stream.read_nb()`` is the only tuple pattern."""
        if not (isinstance(value_node, ast.Call)
                and isinstance(value_node.func, ast.Attribute)
                and value_node.func.attr == "read_nb"):
            raise self.err(
                "tuple assignment is only supported for stream.read_nb()",
                node,
            )
        if len(target.elts) != 2:
            raise self.err("read_nb() unpacks into exactly two names", node)
        stream = self._stream_operand(value_node.func.value, "in", node)
        result = self.builder.emit(ins.FifoNbRead(stream))
        ok = self.builder.emit(ins.TupleGet(result, 0))
        data = self.builder.emit(ins.TupleGet(result, 1))
        for element, part in zip(target.elts, (ok, data)):
            if not isinstance(element, ast.Name):
                raise self.err("read_nb targets must be names", node)
            if element.id == "_":
                continue
            self._assign_to(element, part, node)

    def _stmt_If(self, node: ast.If):
        cond = self.lower_expr(node.test)
        then_block = self.new_block("if.then")
        merge_block = self.new_block("if.end")
        else_block = merge_block
        if node.orelse:
            else_block = self.new_block("if.else")
        self.builder.branch(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self.lower_statements(node.body)
        if not self.builder.is_terminated:
            self.builder.jump(merge_block)

        if node.orelse:
            self.builder.set_block(else_block)
            self.lower_statements(node.orelse)
            if not self.builder.is_terminated:
                self.builder.jump(merge_block)

        self.builder.set_block(merge_block)
        if self._block_unreachable(merge_block):
            # Both arms diverged; terminate the dead merge block.
            self.builder.ret()

    def _block_unreachable(self, block) -> bool:
        for other in self.function.blocks:
            if other is block:
                continue
            if block in other.successors():
                return False
        return True

    def _stmt_While(self, node: ast.While):
        header = self.new_block("while.head")
        self.builder.jump(header)

        meta = LoopMeta(header=header, name="while")
        self._register_loop(meta, header)

        body_first, exit_block, pragmas = self._loop_scaffold(
            node, header, meta, continue_target=header
        )

        self.builder.set_block(header)
        infinite = (isinstance(node.test, ast.Constant)
                    and node.test.value is True)
        if infinite:
            self.builder.jump(body_first)
        else:
            cond = self.lower_expr(node.test)
            self.builder.branch(cond, body_first, exit_block)

        self.builder.set_block(body_first)
        self.lower_statements(pragmas)
        if not self.builder.is_terminated:
            self.builder.jump(header)

        self._finish_loop(meta, exit_block)

    def _stmt_For(self, node: ast.For):
        if not (isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id == "range"):
            raise self.err("for loops must iterate over range(...)", node)
        if not isinstance(node.target, ast.Name):
            raise self.err("loop variable must be a simple name", node)
        if node.orelse:
            raise self.err("for/else is not supported", node)
        if self._has_unroll_pragma(node.body):
            self._lower_unrolled_for(node)
            return

        args = [self.lower_expr(a) for a in node.iter.args]
        if len(args) == 1:
            start, stop, step = Constant(ty.i32, 0), args[0], Constant(ty.i32, 1)
        elif len(args) == 2:
            start, stop, step = args[0], args[1], Constant(ty.i32, 1)
        elif len(args) == 3:
            start, stop, step = args
        else:
            raise self.err("range() takes 1-3 arguments", node)
        if not isinstance(step, Constant) or step.value == 0:
            raise self.err("range() step must be a non-zero constant", node)

        ivar_type = ty.common_type(start.type, stop.type)
        name = node.target.id
        slot = self.builder.alloca(ivar_type, name)
        self.scope[name] = sym.VarSymbol(slot, ivar_type)
        self.builder.store(slot, start)

        header = self.new_block("for.head")
        self.builder.jump(header)
        meta = LoopMeta(header=header, name=f"for_{name}")
        self._register_loop(meta, header)

        latch = self.new_block("for.latch")
        meta.latch = latch
        body_first, exit_block, pragmas = self._loop_scaffold(
            node, header, meta, continue_target=latch
        )
        self._infer_trip_hint(meta, start, stop, step)

        self.builder.set_block(header)
        ivar = self.builder.load(slot, name=name)
        cmp_op = "lt" if step.value > 0 else "gt"
        cond = self.builder.cmp(cmp_op, ivar, stop)
        self.builder.branch(cond, body_first, exit_block)

        self.builder.set_block(body_first)
        self.lower_statements(pragmas)
        if not self.builder.is_terminated:
            self.builder.jump(latch)

        self.builder.set_block(latch)
        ivar2 = self.builder.load(slot)
        self.builder.store(slot, self.builder.binop("add", ivar2, step))
        self.builder.jump(header)

        self._finish_loop(meta, exit_block)

    def _has_unroll_pragma(self, body: list[ast.stmt]) -> bool:
        for statement in body:
            if not (isinstance(statement, ast.Expr)
                    and isinstance(statement.value, ast.Call)):
                return False
            func = statement.value.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr == "unroll"
                    and self._is_hls_module(func.value.id)):
                return True
        return False

    def _lower_unrolled_for(self, node: ast.For):
        """Fully unroll a constant-trip loop: replicate the body once per
        iteration with the loop variable bound to each constant value."""
        args = [self.lower_expr(a) for a in node.iter.args]
        values = [a.value if isinstance(a, Constant) else None for a in args]
        if any(v is None for v in values):
            raise self.err(
                "unrolled loops require compile-time constant bounds", node
            )
        if len(values) == 1:
            start, stop, step = 0, values[0], 1
        elif len(values) == 2:
            start, stop, step = values[0], values[1], 1
        else:
            start, stop, step = values
        if step == 0:
            raise self.err("range() step must be non-zero", node)
        trips = range(start, stop, step)
        if len(trips) > 1024:
            raise self.err(
                f"refusing to unroll {len(trips)} iterations (limit 1024)",
                node,
            )
        body = [s for s in node.body if not self._is_pragma_stmt(s)]
        for stmt in ast.walk(ast.Module(body=body, type_ignores=[])):
            if isinstance(stmt, (ast.Break, ast.Continue)):
                raise self.err(
                    "break/continue inside an unrolled loop is not "
                    "supported", node
                )
        name = node.target.id
        slot = self.builder.alloca(ty.i32, name)
        self.scope[name] = sym.VarSymbol(slot, ty.i32)
        for value in trips:
            if self.builder.is_terminated:
                break
            self.builder.store(slot, Constant(ty.i32, value))
            self.lower_statements(body)

    def _is_pragma_stmt(self, statement: ast.stmt) -> bool:
        if not (isinstance(statement, ast.Expr)
                and isinstance(statement.value, ast.Call)):
            return False
        func = statement.value.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and self._is_hls_module(func.value.id)):
            return func.attr in ("pipeline", "trip_count", "unroll")
        return False

    def _register_loop(self, meta: LoopMeta, header) -> None:
        meta.parent = self._active_loops[-1] if self._active_loops else None
        meta.blocks.add(header)
        header.is_loop_header = True
        header.loop = meta
        for loop in self._active_loops:
            loop.blocks.add(header)
        self.function.loops.append(meta)
        self._active_loops.append(meta)

    def _loop_scaffold(self, node, header, meta, continue_target):
        """Create body/exit blocks, parse pragmas, push the loop context.

        Returns (body_first_block, exit_block, remaining_body_stmts).
        """
        remaining = self._consume_pragmas(node.body, meta)
        body_first = self.new_block("loop.body")
        # The exit block belongs to the *enclosing* loop (if any), so pop
        # this loop temporarily while creating it.
        self._active_loops.pop()
        exit_block = self.new_block("loop.exit")
        self._active_loops.append(meta)
        meta.exit = exit_block
        self.loop_stack.append(
            LoopContext(header, exit_block, continue_target, meta)
        )
        return body_first, exit_block, remaining

    def _finish_loop(self, meta: LoopMeta, exit_block) -> None:
        self.loop_stack.pop()
        self._active_loops.pop()
        self.builder.set_block(exit_block)

    def _consume_pragmas(self, body: list[ast.stmt], meta: LoopMeta):
        """Strip leading hls.pipeline / hls.trip_count pragma calls."""
        index = 0
        while index < len(body):
            statement = body[index]
            if not (isinstance(statement, ast.Expr)
                    and isinstance(statement.value, ast.Call)):
                break
            call = statement.value
            pragma = self._pragma_name(call.func)
            if pragma == "pipeline":
                meta.pipelined = True
                meta.ii = self._pragma_int_arg(call, "ii", default=1)
                if meta.ii < 1:
                    raise self.err("pipeline II must be >= 1", statement)
            elif pragma == "trip_count":
                meta.trip_hint = self._pragma_int_arg(call, "n", default=None,
                                                      positional=True)
            else:
                break
            index += 1
        return body[index:]

    def _pragma_name(self, func) -> str | None:
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            module = self.globals.get(func.value.id)
            import repro.hls as hls_module

            if module is hls_module and func.attr in ("pipeline",
                                                      "trip_count"):
                return func.attr
        return None

    def _pragma_int_arg(self, call: ast.Call, keyword: str, default,
                        positional: bool = False):
        for kw in call.keywords:
            if kw.arg == keyword:
                return self._const_int(kw.value, call)
        if positional and call.args:
            return self._const_int(call.args[0], call)
        if call.args and not positional:
            return self._const_int(call.args[0], call)
        return default

    def _infer_trip_hint(self, meta, start, stop, step):
        if meta.trip_hint is not None:
            return
        if isinstance(start, Constant) and isinstance(stop, Constant):
            span = stop.value - start.value
            trips = max(0, -(-span // step.value) if step.value > 0
                        else -(-(-span) // (-step.value)))
            meta.trip_hint = trips

    def _stmt_Break(self, node):
        if not self.loop_stack:
            raise self.err("break outside loop", node)
        self.builder.jump(self.loop_stack[-1].exit)

    def _stmt_Continue(self, node):
        if not self.loop_stack:
            raise self.err("continue outside loop", node)
        self.builder.jump(self.loop_stack[-1].continue_target)

    def _stmt_Return(self, node: ast.Return):
        if self.inline_stack:
            frame = self.inline_stack[-1]
            if node.value is not None:
                if frame.return_slot is None:
                    raise self.err(
                        f"kernel {frame.kernel_name} returns a value but has "
                        "no return type annotation", node
                    )
                value = self.lower_expr(node.value)
                self.builder.store(frame.return_slot, value)
            frame.returned = True
            self.builder.jump(frame.return_block)
            return
        if node.value is not None:
            raise self.err(
                "top-level kernels cannot return values; use a ScalarOut "
                "port", node
            )
        self.builder.ret()

    def _stmt_Assert(self, node: ast.Assert):
        cond = self.lower_expr(node.test)
        message = "assertion failed"
        if node.msg is not None:
            if (isinstance(node.msg, ast.Constant)
                    and isinstance(node.msg.value, str)):
                message = node.msg.value
            else:
                raise self.err("assert message must be a string literal",
                               node)
        self.builder.emit(ins.Assert(self.builder.to_bool(cond), message))

    # ------------------------------------------------------------------
    # expressions

    def lower_expr(self, node: ast.expr) -> Value:
        method = getattr(self, f"_expr_{type(node).__name__}", None)
        if method is None:
            raise self.err(
                f"unsupported expression {type(node).__name__}", node
            )
        return method(node)

    def _expr_Constant(self, node: ast.Constant) -> Value:
        value = node.value
        if isinstance(value, bool):
            return Constant(ty.i1, int(value))
        if isinstance(value, int):
            type_ = ty.i32 if -(2**31) <= value < 2**31 else ty.i64
            return Constant(type_, value)
        if isinstance(value, float):
            return Constant(ty.f32, value)
        raise self.err(f"unsupported literal {value!r}", node)

    def _expr_Name(self, node: ast.Name) -> Value:
        return self._load_name(node.id, node)

    def _load_name(self, name: str, node) -> Value:
        symbol = self.scope.get(name)
        if symbol is None:
            # Fall back to module-level constants (e.g. N = 2025).
            if name in self.globals and isinstance(self.globals[name], int):
                return Constant(ty.i32, self.globals[name])
            raise self.err(f"undefined name {name!r}", node)
        if isinstance(symbol, sym.VarSymbol):
            return self.builder.load(symbol.slot, name=name)
        if isinstance(symbol, sym.ValueSymbol):
            return symbol.value
        raise self.err(f"{name!r} is not a scalar value", node)

    def _expr_BinOp(self, node: ast.BinOp) -> Value:
        if isinstance(node.op, ast.RShift):
            op = "rshift"
        else:
            op = _BIN_MAP.get(type(node.op))
        if op is None:
            raise self.err(
                f"unsupported operator {type(node.op).__name__}", node
            )
        a = self.lower_expr(node.left)
        b = self.lower_expr(node.right)
        return self._emit_binop(op, a, b, node)

    def _emit_binop(self, op: str, a: Value, b: Value, node) -> Value:
        if op == "rshift":
            # Arithmetic shift for signed, logical for unsigned.
            if isinstance(a.type, ty.IntType) and not a.type.signed:
                op = "lshr"
            else:
                op = "ashr"
        try:
            return self.builder.binop(op, a, b)
        except TypeCheckError as exc:
            raise self.err(str(exc), node) from exc

    def _expr_UnaryOp(self, node: ast.UnaryOp) -> Value:
        operand = self.lower_expr(node.operand)
        if isinstance(node.op, ast.USub):
            if isinstance(operand, Constant):
                return Constant(operand.type, -operand.value
                                if not isinstance(operand.type, ty.FloatType)
                                else -operand.value)
            return self.builder.unop("neg", operand)
        if isinstance(node.op, ast.Invert):
            return self.builder.unop("not", operand)
        if isinstance(node.op, ast.Not):
            return self.builder.unop("lnot", operand)
        if isinstance(node.op, ast.UAdd):
            return operand
        raise self.err("unsupported unary operator", node)

    def _expr_Compare(self, node: ast.Compare) -> Value:
        if len(node.ops) != 1:
            raise self.err("chained comparisons are not supported", node)
        op = _CMP_MAP.get(type(node.ops[0]))
        if op is None:
            raise self.err(
                f"unsupported comparison {type(node.ops[0]).__name__}", node
            )
        a = self.lower_expr(node.left)
        b = self.lower_expr(node.comparators[0])
        return self.builder.cmp(op, a, b)

    def _expr_BoolOp(self, node: ast.BoolOp) -> Value:
        # Lowered to bitwise logic on booleans (no short-circuit), which is
        # what HLS hardware does.  Operands with side effects are rejected.
        for value in node.values:
            self._reject_side_effects(value)
        op = "and" if isinstance(node.op, ast.And) else "or"
        result = self.builder.to_bool(self.lower_expr(node.values[0]))
        for value in node.values[1:]:
            rhs = self.builder.to_bool(self.lower_expr(value))
            result = self.builder.binop(op, result, rhs)
        return result

    def _reject_side_effects(self, node) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                func = child.func
                if isinstance(func, ast.Attribute) and func.attr in (
                    "read", "write", "read_nb", "write_nb",
                    "read_req", "write_req", "write_resp", "set",
                ):
                    raise self.err(
                        "FIFO/AXI operations inside and/or expressions are "
                        "not supported; use explicit ifs", node
                    )

    def _expr_IfExp(self, node: ast.IfExp) -> Value:
        cond = self.lower_expr(node.test)
        a = self.lower_expr(node.body)
        b = self.lower_expr(node.orelse)
        return self.builder.select(cond, a, b)

    def _expr_Subscript(self, node: ast.Subscript) -> Value:
        return self._lower_subscript_load(node)

    def _expr_Call(self, node: ast.Call) -> Value:
        result = self.lower_call(node, result_used=True)
        if result is None:
            raise self.err("call used as a value returns nothing", node)
        return result

    # ------------------------------------------------------------------
    # subscripts

    def _subscript_ref(self, node: ast.Subscript):
        """Resolve (possibly nested) subscripts into
        (storage, flat_index, element_type, writable)."""
        indices = []
        base = node
        while isinstance(base, ast.Subscript):
            indices.append(base.slice)
            base = base.value
        indices.reverse()
        if not isinstance(base, ast.Name):
            raise self.err("subscript base must be a name", node)
        symbol = self.scope.get(base.id)
        if not isinstance(symbol, sym.ArraySymbol):
            raise self.err(f"{base.id!r} is not an array", node)
        shape = symbol.type.shape
        if len(indices) != len(shape):
            raise self.err(
                f"array {base.id!r} expects {len(shape)} indices, got "
                f"{len(indices)}", node
            )
        strides = symbol.type.flat_index_strides()
        flat: Value | None = None
        for index_node, stride in zip(indices, strides):
            index = self.builder.coerce(self.lower_expr(index_node), ty.i32)
            term = (index if stride == 1 else
                    self.builder.binop("mul", index,
                                       Constant(ty.i32, stride)))
            flat = term if flat is None else self.builder.binop("add", flat,
                                                                term)
        return symbol.storage, flat, symbol.type.element, symbol.writable

    def _lower_subscript_load(self, node: ast.Subscript) -> Value:
        storage, index, _elem, _writable = self._subscript_ref(node)
        return self.builder.load(storage, index)

    # ------------------------------------------------------------------
    # calls

    def lower_call(self, node: ast.Call, result_used: bool) -> Value | None:
        func = node.func
        if isinstance(func, ast.Attribute):
            return self._lower_method_call(node, func, result_used)
        if isinstance(func, ast.Name):
            return self._lower_plain_call(node, func, result_used)
        raise self.err("unsupported call target", node)

    def _lower_method_call(self, node: ast.Call, func: ast.Attribute,
                           result_used: bool):
        # hls.pipeline / hls.trip_count outside loop-head position: error.
        if self._pragma_name(func) is not None:
            raise self.err(
                f"hls.{func.attr}() must be the first statement of a loop "
                "body", node
            )
        if (isinstance(func.value, ast.Name)
                and self._is_hls_module(func.value.id)):
            return self._lower_hls_call(node, func.attr, result_used)

        if not isinstance(func.value, ast.Name):
            raise self.err("method call base must be a name", node)
        symbol = self.scope.get(func.value.id)
        if isinstance(symbol, sym.StreamSymbol):
            return self._lower_stream_method(node, symbol, func.attr,
                                             result_used)
        if isinstance(symbol, sym.AxiSymbol):
            return self._lower_axi_method(node, symbol, func.attr)
        if isinstance(symbol, sym.ScalarOutSymbol):
            return self._lower_scalar_method(node, symbol, func.attr)
        raise self.err(
            f"{func.value.id!r} has no method {func.attr!r}", node
        )

    def _is_hls_module(self, name: str) -> bool:
        import repro.hls as hls_module

        return self.globals.get(name) is hls_module

    def _lower_hls_call(self, node: ast.Call, attr: str, result_used: bool):
        if attr == "cast":
            if len(node.args) != 2:
                raise self.err("hls.cast(type, value) takes 2 arguments",
                               node)
            target_type = self._resolve_type(node.args[0], node)
            value = self.lower_expr(node.args[1])
            return self.builder.coerce(value, target_type)
        if attr == "array":
            raise self.err(
                "hls.array(...) may only appear as `name = hls.array(...)`",
                node,
            )
        raise self.err(f"unknown hls helper hls.{attr}", node)

    def _stream_operand(self, base, direction: str, node) -> Value:
        if not isinstance(base, ast.Name):
            raise self.err("stream operations require a named stream", node)
        symbol = self.scope.get(base.id)
        if not isinstance(symbol, sym.StreamSymbol):
            raise self.err(f"{base.id!r} is not a stream", node)
        if symbol.direction != direction:
            need = "readable" if direction == "in" else "writable"
            raise self.err(f"stream {base.id!r} is not {need}", node)
        return symbol.arg

    def _lower_stream_method(self, node: ast.Call, symbol: sym.StreamSymbol,
                             method: str, result_used: bool):
        stream = symbol.arg
        if method == "read":
            self._require_direction(symbol, "in", node)
            self._check_argc(node, 0)
            return self.builder.emit(ins.FifoRead(stream))
        if method == "write":
            self._require_direction(symbol, "out", node)
            self._check_argc(node, 1)
            value = self.builder.coerce(
                self.lower_expr(node.args[0]), stream.type.element
            )
            return self.builder.emit(ins.FifoWrite(stream, value))
        if method == "read_nb":
            self._require_direction(symbol, "in", node)
            self._check_argc(node, 0)
            return self.builder.emit(ins.FifoNbRead(stream))
        if method == "write_nb":
            self._require_direction(symbol, "out", node)
            self._check_argc(node, 1)
            value = self.builder.coerce(
                self.lower_expr(node.args[0]), stream.type.element
            )
            return self.builder.emit(ins.FifoNbWrite(stream, value))
        if method == "empty":
            self._require_direction(symbol, "in", node)
            self._check_argc(node, 0)
            can_read = self.builder.emit(ins.FifoCanRead(stream))
            return self.builder.unop("lnot", can_read)
        if method == "full":
            self._require_direction(symbol, "out", node)
            self._check_argc(node, 0)
            can_write = self.builder.emit(ins.FifoCanWrite(stream))
            return self.builder.unop("lnot", can_write)
        raise self.err(f"unknown stream method {method!r}", node)

    def _require_direction(self, symbol: sym.StreamSymbol, direction: str,
                           node) -> None:
        if symbol.direction != direction:
            verb = "read from" if direction == "in" else "write to"
            raise self.err(
                f"cannot {verb} a Stream{'In' if direction == 'out' else 'Out'}"
                " port", node
            )

    def _check_argc(self, node: ast.Call, count: int) -> None:
        if len(node.args) != count or node.keywords:
            raise self.err(
                f"expected {count} positional argument(s)", node
            )

    def _lower_axi_method(self, node: ast.Call, symbol: sym.AxiSymbol,
                          method: str):
        port = symbol.arg
        if method == "read_req":
            self._check_argc(node, 2)
            offset = self.builder.coerce(self.lower_expr(node.args[0]),
                                         ty.i32)
            length = self.builder.coerce(self.lower_expr(node.args[1]),
                                         ty.i32)
            return self.builder.emit(ins.AxiReadReq(port, offset, length))
        if method == "read":
            self._check_argc(node, 0)
            return self.builder.emit(ins.AxiRead(port))
        if method == "write_req":
            self._check_argc(node, 2)
            offset = self.builder.coerce(self.lower_expr(node.args[0]),
                                         ty.i32)
            length = self.builder.coerce(self.lower_expr(node.args[1]),
                                         ty.i32)
            return self.builder.emit(ins.AxiWriteReq(port, offset, length))
        if method == "write":
            self._check_argc(node, 1)
            value = self.builder.coerce(self.lower_expr(node.args[0]),
                                        port.type.element)
            return self.builder.emit(ins.AxiWrite(port, value))
        if method == "write_resp":
            self._check_argc(node, 0)
            return self.builder.emit(ins.AxiWriteResp(port))
        raise self.err(f"unknown AXI method {method!r}", node)

    def _lower_scalar_method(self, node: ast.Call,
                             symbol: sym.ScalarOutSymbol, method: str):
        if method == "set":
            self._check_argc(node, 1)
            value = self.lower_expr(node.args[0])
            return self.builder.store(symbol.arg, value, Constant(ty.i32, 0))
        if method == "get":
            self._check_argc(node, 0)
            return self.builder.load(symbol.arg, Constant(ty.i32, 0))
        raise self.err(f"unknown scalar method {method!r}", node)

    def _lower_plain_call(self, node: ast.Call, func: ast.Name,
                          result_used: bool):
        name = func.id
        if name in ("min", "max"):
            if len(node.args) != 2:
                raise self.err(f"{name}() requires exactly 2 arguments", node)
            a = self.lower_expr(node.args[0])
            b = self.lower_expr(node.args[1])
            op = "lt" if name == "min" else "gt"
            cond = self.builder.cmp(op, a, b)
            return self.builder.select(cond, a, b)
        if name == "abs":
            self._check_argc(node, 1)
            a = self.lower_expr(node.args[0])
            neg = self.builder.unop("neg", a)
            cond = self.builder.cmp("lt", a, Constant(a.type, 0))
            return self.builder.select(cond, neg, a)
        if name == "int":
            self._check_argc(node, 1)
            return self.builder.coerce(self.lower_expr(node.args[0]), ty.i32)
        if name == "float":
            self._check_argc(node, 1)
            return self.builder.coerce(self.lower_expr(node.args[0]), ty.f32)
        if name == "bool":
            self._check_argc(node, 1)
            return self.builder.to_bool(self.lower_expr(node.args[0]))

        target = self.globals.get(name) or self.scope.get(name)
        if isinstance(target, sym.KernelSymbol):
            target = target.kernel
        if isinstance(target, Kernel):
            return self._inline_kernel_call(node, target, result_used)
        raise self.err(f"cannot call {name!r}", node)

    # ------------------------------------------------------------------
    # kernel inlining

    def _inline_kernel_call(self, node: ast.Call, callee: Kernel,
                            result_used: bool):
        if len(self.inline_stack) >= self.MAX_INLINE_DEPTH:
            raise self.err(
                f"inline depth limit exceeded calling {callee.name} "
                "(recursive kernels are not synthesizable)", node
            )
        params = list(callee.ports.items())
        if len(node.args) != len(params) or node.keywords:
            raise self.err(
                f"kernel {callee.name} takes {len(params)} positional "
                f"arguments, got {len(node.args)}", node
            )

        saved_scope = self.scope
        saved_globals = self.globals
        callee_scope: dict[str, sym.Symbol] = {}
        for (pname, decl), arg_node in zip(params, node.args):
            callee_scope[pname] = self._bind_inline_argument(
                decl, arg_node, callee, node
            )

        return_type = callee.return_type
        return_slot = None
        if return_type is not None:
            if not isinstance(return_type, ty.Type):
                raise self.err(
                    f"kernel {callee.name}: return annotation must be an "
                    "hls type", node
                )
            return_slot = self.builder.alloca(return_type,
                                              f"{callee.name}.ret")
        return_block = self.new_block(f"{callee.name}.ret")

        frame = InlineFrame(callee.name, return_slot, return_block)
        self.inline_stack.append(frame)
        self.scope = callee_scope
        callee_globals = dict(getattr(callee.fn, "__globals__", {}))
        closure = getattr(callee.fn, "__closure__", None)
        if closure:
            for fname, cell in zip(callee.fn.__code__.co_freevars, closure):
                callee_globals[fname] = cell.cell_contents
        self.globals = callee_globals

        import ast as ast_module

        tree = ast_module.parse(callee.source)
        fn_def = tree.body[0]
        body_block = self.new_block(f"{callee.name}.body")
        self.builder.jump(body_block)
        self.builder.set_block(body_block)
        self.lower_statements(fn_def.body)
        if not self.builder.is_terminated:
            self.builder.jump(return_block)

        self.inline_stack.pop()
        self.scope = saved_scope
        self.globals = saved_globals
        self.builder.set_block(return_block)

        if return_slot is not None and result_used:
            return self.builder.load(return_slot)
        return None

    def _bind_inline_argument(self, decl, arg_node, callee: Kernel, node):
        if isinstance(decl, (port_decls.Const, port_decls.In)):
            value = self.lower_expr(arg_node)
            if isinstance(decl, port_decls.Const):
                if not isinstance(value, Constant):
                    raise self.err(
                        f"kernel {callee.name}: Const parameter requires a "
                        "compile-time constant", node
                    )
                value = Constant(decl.element, value.value)
            else:
                value = self.builder.coerce(value, decl.element)
            return sym.ValueSymbol(value)
        # Hardware ports must be passed through by name.
        if not isinstance(arg_node, ast.Name):
            raise self.err(
                f"kernel {callee.name}: hardware ports must be passed as "
                "plain names", node
            )
        symbol = self.scope.get(arg_node.id)
        if symbol is None:
            raise self.err(f"undefined name {arg_node.id!r}", node)
        expected = {
            port_decls.StreamIn: sym.StreamSymbol,
            port_decls.StreamOut: sym.StreamSymbol,
            port_decls.Buffer: sym.ArraySymbol,
            port_decls.ScalarOut: sym.ScalarOutSymbol,
            port_decls.AxiMaster: sym.AxiSymbol,
        }.get(type(decl))
        if expected is None or not isinstance(symbol, expected):
            raise self.err(
                f"kernel {callee.name}: argument {arg_node.id!r} does not "
                f"match port declaration {decl}", node
            )
        if isinstance(decl, port_decls.StreamIn) and symbol.direction != "in":
            raise self.err(
                f"kernel {callee.name}: stream direction mismatch for "
                f"{arg_node.id!r}", node
            )
        if (isinstance(decl, port_decls.StreamOut)
                and symbol.direction != "out"):
            raise self.err(
                f"kernel {callee.name}: stream direction mismatch for "
                f"{arg_node.id!r}", node
            )
        return symbol

    # ------------------------------------------------------------------
    # helpers

    def _try_local_array_decl(self, node):
        """Detect ``hls.array(element_type, shape)`` on the RHS."""
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "array"
                and isinstance(node.func.value, ast.Name)
                and self._is_hls_module(node.func.value.id)):
            return None
        if len(node.args) < 2:
            raise self.err("hls.array(element_type, shape[, init])", node)
        element = self._resolve_type(node.args[0], node)
        shape_node = node.args[1]
        if isinstance(shape_node, ast.Tuple):
            shape = tuple(self._const_int(e, node) for e in shape_node.elts)
        else:
            shape = (self._const_int(shape_node, node),)
        init = None
        if len(node.args) >= 3:
            init = self._const_list(node.args[2], node)
        return ty.ArrayType(element, shape), init

    def _resolve_type(self, node, context) -> ty.Type:
        """Evaluate a type expression (e.g. ``hls.i32``, ``hls.fixed(16,8)``)
        against the kernel's globals."""
        try:
            code = compile(ast.Expression(body=node), "<type>", "eval")
            result = eval(code, self.globals)  # noqa: S307 - compile-time only
        except Exception as exc:
            raise self.err(f"cannot evaluate type expression: {exc}",
                           context) from exc
        if not isinstance(result, ty.Type):
            raise self.err(f"{result!r} is not an hls type", context)
        return result

    def _const_int(self, node, context) -> int:
        value = self.lower_expr(node)
        if not isinstance(value, Constant):
            raise self.err("expected a compile-time integer constant",
                           context)
        return int(value.value)

    def _const_list(self, node, context) -> list:
        if not isinstance(node, (ast.List, ast.Tuple)):
            raise self.err("array initializer must be a list literal",
                           context)
        return [self._const_int(e, context) for e in node.elts]
