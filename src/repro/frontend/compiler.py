"""Front-end driver: kernel source -> verified IR function.

This is the reproduction's analogue of the HLS front-end compilation stage
(paper section 6.1): parse the design source, lower it to IR, apply the
redundant-FIFO-check elimination pass (paper section 7.3.2), and verify.
"""

from __future__ import annotations

import ast

from ..errors import CompileError
from ..hls import ports as port_decls
from ..hls.kernel import Kernel
from ..ir.function import Function
from ..ir.values import Argument
from ..ir.verifier import verify_function
from .lowering import KernelLowering
from .optimize import eliminate_dead_fifo_checks

#: Global toggle used by the ablation benchmark; normal code leaves it True.
ENABLE_DEAD_CHECK_ELIMINATION = True


def compile_kernel(kernel: Kernel, const_bindings: dict | None = None,
                   optimize: bool | None = None) -> Function:
    """Compile ``kernel`` into an IR function.

    ``const_bindings`` supplies values for ``Const``/``In`` parameters; the
    result is specialized for them (loop bounds become literals, etc.).
    """
    const_bindings = dict(const_bindings or {})
    tree = ast.parse(kernel.source)
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        raise CompileError(
            f"kernel {kernel.name}: source does not start with a function "
            "definition"
        )
    fn_def = tree.body[0]

    arguments: dict[str, Argument] = {}
    params = []
    index = 0
    for pname, decl in kernel.ports.items():
        if isinstance(decl, (port_decls.Const, port_decls.In)):
            if pname not in const_bindings:
                raise CompileError(
                    f"kernel {kernel.name}: missing constant binding for "
                    f"{pname!r}"
                )
            continue
        arg = Argument(port_decls.port_ir_type(decl), pname, decl.kind, index)
        arguments[pname] = arg
        params.append(arg)
        index += 1

    function = Function(kernel.name, params)
    lowering = KernelLowering(kernel, const_bindings, function, arguments)
    lowering.lower(fn_def.body)

    enable = ENABLE_DEAD_CHECK_ELIMINATION if optimize is None else optimize
    if enable:
        eliminate_dead_fifo_checks(function)

    verify_function(function)
    return function
