"""Front-end IR clean-up passes.

The one pass that matters for the paper is *redundant FIFO check
elimination* (section 7.3.2): ``empty()``/``full()`` calls whose result is
never used would otherwise force the simulator to resolve a timing query
for no observable effect.  The pass removes them (they are pure status
queries; unlike ``read_nb``/``write_nb`` they mutate nothing).
"""

from __future__ import annotations

from ..ir import instructions as ins
from ..ir.function import Function


def _count_uses(function: Function) -> dict[int, int]:
    uses: dict[int, int] = {}
    for instr in function.iter_instructions():
        for op in instr.operands:
            uses[op.vid] = uses.get(op.vid, 0) + 1
    return uses


def eliminate_dead_fifo_checks(function: Function) -> int:
    """Remove FifoCanRead/FifoCanWrite instructions with unused results.

    Also sweeps trivially dead pure instructions that become unused as a
    result (e.g. the ``lnot`` wrapper the front-end adds for ``empty()``).
    Returns the number of removed instructions.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        uses = _count_uses(function)
        for block in function.blocks:
            keep = []
            for instr in block.instructions:
                dead = False
                if isinstance(instr, (ins.FifoCanRead, ins.FifoCanWrite)):
                    dead = uses.get(instr.vid, 0) == 0
                elif isinstance(instr, (ins.UnOp, ins.BinOp, ins.Cmp,
                                        ins.Cast, ins.Select, ins.TupleGet)):
                    dead = uses.get(instr.vid, 0) == 0
                if dead:
                    removed += 1
                    changed = True
                else:
                    keep.append(instr)
            block.instructions = keep
    return removed
