"""Symbol table entries used during AST lowering."""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import types as ty
from ..ir.values import Value


class Symbol:
    """Base class for name bindings inside a kernel body."""


@dataclass
class VarSymbol(Symbol):
    """A mutable scalar local backed by an alloca slot."""

    slot: Value  # the Alloca instruction
    type: ty.Type


@dataclass
class ArraySymbol(Symbol):
    """A local array (alloca) or array port (Argument)."""

    storage: Value
    type: ty.ArrayType
    writable: bool = True


@dataclass
class StreamSymbol(Symbol):
    """A FIFO endpoint argument; ``direction`` is 'in' or 'out'."""

    arg: Value
    direction: str


@dataclass
class ScalarOutSymbol(Symbol):
    """A scalar output register argument (1-element array underneath)."""

    arg: Value
    type: ty.Type


@dataclass
class AxiSymbol(Symbol):
    """An AXI master port argument."""

    arg: Value


@dataclass
class ValueSymbol(Symbol):
    """An immutable SSA value binding (const params, inlined In arguments)."""

    value: Value


@dataclass
class KernelSymbol(Symbol):
    """A reference to another kernel, callable (inlined) from this body."""

    kernel: object
