"""HLS front-end: compiles the Python-embedded dialect into IR."""

from .compiler import compile_kernel
from .optimize import eliminate_dead_fifo_checks

__all__ = ["compile_kernel", "eliminate_dead_fifo_checks"]
