"""Instruction set of the reproduction IR.

Ordinary computation mirrors LLVM (binary ops, compares, casts, selects,
memory ops, structured branches).  Hardware interaction is expressed with
first-class intrinsic instructions matching the request taxonomy of the
paper's Table 1: blocking and non-blocking FIFO accesses, FIFO status
queries, and the five AXI operations.
"""

from __future__ import annotations

from .. import errors
from . import types as ty
from .values import Value


class Instruction(Value):
    """Base instruction.  ``operands`` are the SSA inputs."""

    __slots__ = ("operands", "block")

    #: Mnemonic, overridden per subclass.
    opname = "instr"
    #: True if the instruction has an externally visible effect and must keep
    #: program order with other side-effecting instructions.
    has_side_effect = False
    #: True if the instruction ends a basic block.
    is_terminator = False

    def __init__(self, type_: ty.Type, operands, name: str = ""):
        super().__init__(type_, name)
        self.operands = list(operands)
        self.block = None

    def render(self) -> str:
        ops = ", ".join(o.short() for o in self.operands)
        lhs = "" if isinstance(self.type, ty.VoidType) else f"{self.short()} = "
        return f"{lhs}{self.opname} {ops}".rstrip()


# --- arithmetic / logic ------------------------------------------------------

BINARY_OPS = {
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}

CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}


class BinOp(Instruction):
    __slots__ = ("op",)
    has_side_effect = False

    def __init__(self, op: str, a: Value, b: Value, type_: ty.Type, name=""):
        if op not in BINARY_OPS:
            raise errors.TypeCheckError(f"unknown binary op {op!r}")
        super().__init__(type_, [a, b], name)
        self.op = op

    @property
    def opname(self):
        return self.op


class Cmp(Instruction):
    __slots__ = ("op",)

    def __init__(self, op: str, a: Value, b: Value, name=""):
        if op not in CMP_OPS:
            raise errors.TypeCheckError(f"unknown compare op {op!r}")
        super().__init__(ty.i1, [a, b], name)
        self.op = op

    @property
    def opname(self):
        return f"cmp.{self.op}"


class UnOp(Instruction):
    """Unary negate / bitwise-not / logical-not."""

    __slots__ = ("op",)

    def __init__(self, op: str, a: Value, type_: ty.Type, name=""):
        if op not in ("neg", "not", "lnot"):
            raise errors.TypeCheckError(f"unknown unary op {op!r}")
        super().__init__(type_, [a], name)
        self.op = op

    @property
    def opname(self):
        return self.op


class Cast(Instruction):
    """Numeric conversion between any two scalar types."""

    opname = "cast"

    def __init__(self, value: Value, to: ty.Type, name=""):
        super().__init__(to, [value], name)

    def render(self):
        return f"{self.short()} = cast {self.operands[0].short()} to {self.type}"


class Select(Instruction):
    opname = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name=""):
        super().__init__(a.type, [cond, a, b], name)


class TupleGet(Instruction):
    """Extract element ``index`` from a tuple-typed value (NB read results)."""

    __slots__ = ("index",)
    opname = "tupleget"

    def __init__(self, agg: Value, index: int, name=""):
        if not isinstance(agg.type, ty.TupleType):
            raise errors.TypeCheckError("tupleget requires a tuple value")
        super().__init__(agg.type.elements[index], [agg], name)
        self.index = index

    def render(self):
        return f"{self.short()} = tupleget {self.operands[0].short()}, {self.index}"


# --- memory ------------------------------------------------------------------

class Alloca(Instruction):
    """Stack slot for a scalar or a local array."""

    opname = "alloca"

    def __init__(self, allocated: ty.Type, name=""):
        self.allocated = allocated
        super().__init__(allocated, [], name)

    __slots__ = ("allocated",)

    def render(self):
        return f"{self.short()} = alloca {self.allocated}"


class Load(Instruction):
    """Load a scalar slot (no index) or an array element (with index)."""

    opname = "load"
    has_side_effect = False  # ordering handled via memory dependence analysis

    def __init__(self, target: Value, index: Value | None = None, name=""):
        elem = target.type
        if isinstance(elem, ty.ArrayType):
            if index is None:
                raise errors.TypeCheckError("array load requires an index")
            elem = elem.element
        operands = [target] + ([index] if index is not None else [])
        super().__init__(elem, operands, name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value | None:
        return self.operands[1] if len(self.operands) > 1 else None


class Store(Instruction):
    opname = "store"
    has_side_effect = True

    def __init__(self, target: Value, value: Value, index: Value | None = None):
        operands = [target, value] + ([index] if index is not None else [])
        super().__init__(ty.void, operands)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def index(self) -> Value | None:
        return self.operands[2] if len(self.operands) > 2 else None


# --- control flow ------------------------------------------------------------

class Jump(Instruction):
    opname = "br"
    is_terminator = True
    has_side_effect = True

    def __init__(self, target):
        super().__init__(ty.void, [])
        self.target = target

    __slots__ = ("target",)

    def render(self):
        return f"br {self.target.label}"


class Branch(Instruction):
    opname = "condbr"
    is_terminator = True
    has_side_effect = True

    def __init__(self, cond: Value, if_true, if_false):
        super().__init__(ty.void, [cond])
        self.if_true = if_true
        self.if_false = if_false

    __slots__ = ("if_true", "if_false")

    @property
    def cond(self):
        return self.operands[0]

    def render(self):
        return (
            f"condbr {self.cond.short()}, "
            f"{self.if_true.label}, {self.if_false.label}"
        )


class Ret(Instruction):
    opname = "ret"
    is_terminator = True
    has_side_effect = True

    def __init__(self, value: Value | None = None):
        super().__init__(ty.void, [value] if value is not None else [])

    @property
    def value(self):
        return self.operands[0] if self.operands else None


class Assert(Instruction):
    """Simulation-time assertion (models the ``assert()`` HLS benchmark)."""

    __slots__ = ("message",)
    opname = "assert"
    has_side_effect = True

    def __init__(self, cond: Value, message: str = "assertion failed"):
        super().__init__(ty.void, [cond])
        self.message = message


# --- FIFO intrinsics (paper Table 1) ----------------------------------------

class FifoOp(Instruction):
    """Base for all FIFO intrinsics; ``stream`` is a stream-typed argument."""

    __slots__ = ()
    has_side_effect = True

    @property
    def stream(self) -> Value:
        return self.operands[0]


class FifoRead(FifoOp):
    """Blocking read: stalls the module until data is available."""

    opname = "fifo.read"

    def __init__(self, stream: Value, name=""):
        super().__init__(stream.type.element, [stream], name)


class FifoWrite(FifoOp):
    """Blocking write: stalls the module until space is available."""

    opname = "fifo.write"

    def __init__(self, stream: Value, value: Value):
        super().__init__(ty.void, [stream, value])

    @property
    def value(self):
        return self.operands[1]


class FifoNbRead(FifoOp):
    """Non-blocking read; yields an ``(ok, data)`` tuple value."""

    opname = "fifo.read_nb"

    def __init__(self, stream: Value, name=""):
        result = ty.TupleType((ty.i1, stream.type.element))
        super().__init__(result, [stream], name)


class FifoNbWrite(FifoOp):
    """Non-blocking write; yields an ``ok`` boolean."""

    opname = "fifo.write_nb"

    def __init__(self, stream: Value, value: Value, name=""):
        super().__init__(ty.i1, [stream, value], name)

    @property
    def value(self):
        return self.operands[1]


class FifoCanRead(FifoOp):
    """``!stream.empty()`` status query (cycle-dependent, see Table 1)."""

    opname = "fifo.can_read"

    def __init__(self, stream: Value, name=""):
        super().__init__(ty.i1, [stream], name)


class FifoCanWrite(FifoOp):
    """``!stream.full()`` status query."""

    opname = "fifo.can_write"

    def __init__(self, stream: Value, name=""):
        super().__init__(ty.i1, [stream], name)


FIFO_QUERY_OPS = (FifoNbRead, FifoNbWrite, FifoCanRead, FifoCanWrite)


# --- AXI intrinsics ----------------------------------------------------------

class AxiOp(Instruction):
    __slots__ = ()
    has_side_effect = True

    @property
    def port(self) -> Value:
        return self.operands[0]


class AxiReadReq(AxiOp):
    """Issue a burst read request of ``length`` beats starting at ``offset``."""

    opname = "axi.read_req"

    def __init__(self, port: Value, offset: Value, length: Value):
        super().__init__(ty.void, [port, offset, length])

    @property
    def offset(self):
        return self.operands[1]

    @property
    def length(self):
        return self.operands[2]


class AxiRead(AxiOp):
    """Consume the next beat of an outstanding read burst (may stall)."""

    opname = "axi.read"

    def __init__(self, port: Value, name=""):
        super().__init__(port.type.element, [port], name)


class AxiWriteReq(AxiOp):
    opname = "axi.write_req"

    def __init__(self, port: Value, offset: Value, length: Value):
        super().__init__(ty.void, [port, offset, length])

    @property
    def offset(self):
        return self.operands[1]

    @property
    def length(self):
        return self.operands[2]


class AxiWrite(AxiOp):
    """Send the next beat of an outstanding write burst."""

    opname = "axi.write"

    def __init__(self, port: Value, value: Value):
        super().__init__(ty.void, [port, value])

    @property
    def value(self):
        return self.operands[1]


class AxiWriteResp(AxiOp):
    """Wait for the write response of the last write burst."""

    opname = "axi.write_resp"

    def __init__(self, port: Value):
        super().__init__(ty.void, [port])


AXI_OPS = (AxiReadReq, AxiRead, AxiWriteReq, AxiWrite, AxiWriteResp)

#: Instructions that interact with simulated hardware time.  These are the
#: events tracked by the FIFO tables and the simulation graph.
EVENT_OPS = (
    FifoRead, FifoWrite, FifoNbRead, FifoNbWrite, FifoCanRead, FifoCanWrite,
) + AXI_OPS
