"""Convenience builder used by the front-end to emit IR."""

from __future__ import annotations

from .. import errors
from . import instructions as ins
from . import types as ty
from .function import BasicBlock, Function
from .values import Constant, Value


class IRBuilder:
    """Appends instructions to a current block of a function."""

    def __init__(self, function: Function):
        self.function = function
        self.block: BasicBlock | None = None

    # --- blocks --------------------------------------------------------

    def new_block(self, label: str = "") -> BasicBlock:
        return self.function.add_block(BasicBlock(label))

    def set_block(self, block: BasicBlock) -> None:
        self.block = block

    def emit(self, instr: ins.Instruction) -> ins.Instruction:
        if self.block is None:
            raise RuntimeError("no current block")
        return self.block.append(instr)

    @property
    def is_terminated(self) -> bool:
        return self.block is not None and self.block.is_terminated

    # --- constants & coercion -------------------------------------------

    def const(self, type_: ty.Type, value) -> Constant:
        return Constant(type_, value)

    def coerce(self, value: Value, to: ty.Type) -> Value:
        """Insert a cast if ``value`` is not already of type ``to``."""
        if value.type == to:
            return value
        if not (value.type.is_scalar and to.is_scalar):
            raise errors.TypeCheckError(
                f"cannot convert {value.type} to {to}"
            )
        if isinstance(value, Constant):
            return self._fold_constant_cast(value, to)
        return self.emit(ins.Cast(value, to))

    def _fold_constant_cast(self, value: Constant, to: ty.Type) -> Constant:
        from ..interp.ops import convert_scalar

        return Constant(to, convert_scalar(value.value, value.type, to))

    # --- arithmetic ------------------------------------------------------

    def binop(self, op: str, a: Value, b: Value) -> Value:
        result_type = ty.common_type(a.type, b.type)
        a = self.coerce(a, result_type)
        b = self.coerce(b, result_type)
        if isinstance(a, Constant) and isinstance(b, Constant):
            from ..interp.ops import eval_binop

            return Constant(result_type, eval_binop(op, a.value, b.value,
                                                    result_type))
        return self.emit(ins.BinOp(op, a, b, result_type))

    def cmp(self, op: str, a: Value, b: Value) -> Value:
        result_type = ty.common_type(a.type, b.type)
        a = self.coerce(a, result_type)
        b = self.coerce(b, result_type)
        if isinstance(a, Constant) and isinstance(b, Constant):
            from ..interp.ops import eval_cmp

            return Constant(ty.i1, eval_cmp(op, a.value, b.value, result_type))
        return self.emit(ins.Cmp(op, a, b))

    def unop(self, op: str, a: Value) -> Value:
        type_ = ty.i1 if op == "lnot" else a.type
        if op == "lnot":
            a = self.to_bool(a)
        return self.emit(ins.UnOp(op, a, type_))

    def select(self, cond: Value, a: Value, b: Value) -> Value:
        result_type = ty.common_type(a.type, b.type)
        a = self.coerce(a, result_type)
        b = self.coerce(b, result_type)
        return self.emit(ins.Select(self.to_bool(cond), a, b))

    def to_bool(self, value: Value) -> Value:
        if value.type == ty.i1:
            return value
        zero = self.const(value.type, 0)
        return self.emit(ins.Cmp("ne", value, zero))

    # --- memory ----------------------------------------------------------

    def alloca(self, allocated: ty.Type, name: str = "") -> Value:
        return self.emit(ins.Alloca(allocated, name))

    def load(self, target: Value, index: Value | None = None, name="") -> Value:
        return self.emit(ins.Load(target, index, name))

    def store(self, target: Value, value: Value, index: Value | None = None):
        elem = target.type
        if isinstance(elem, ty.ArrayType):
            elem = elem.element
        if isinstance(target, ins.Alloca):
            elem = target.allocated
            if isinstance(elem, ty.ArrayType):
                elem = elem.element
        value = self.coerce(value, elem)
        return self.emit(ins.Store(target, value, index))

    # --- control flow ------------------------------------------------------

    def jump(self, target: BasicBlock):
        return self.emit(ins.Jump(target))

    def branch(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock):
        return self.emit(ins.Branch(self.to_bool(cond), if_true, if_false))

    def ret(self, value: Value | None = None):
        return self.emit(ins.Ret(value))
