"""Textual rendering of IR functions, for debugging and golden tests."""

from __future__ import annotations

from .function import Function


def function_to_text(function: Function) -> str:
    """Render a function in an LLVM-flavoured textual form."""
    lines = []
    params = ", ".join(
        f"{p.kind} {p.name}: {p.type}" for p in function.params
    )
    lines.append(f"func @{function.name}({params}) {{")
    for block in function.blocks:
        annotations = []
        if block.is_loop_header and block.loop is not None:
            loop = block.loop
            pragma = f"pipeline ii={loop.ii}" if loop.pipelined else "no-pipeline"
            annotations.append(f"loop[{pragma}]")
        suffix = ("  ; " + " ".join(annotations)) if annotations else ""
        lines.append(f"{block.label}:{suffix}")
        for instr in block.instructions:
            lines.append(f"  {instr.render()}")
    lines.append("}")
    return "\n".join(lines)
