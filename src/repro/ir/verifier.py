"""Structural verifier for IR functions.

Run after front-end lowering; catches malformed CFGs and type errors early
so the scheduler and interpreter can assume well-formed input.
"""

from __future__ import annotations

from ..errors import VerificationError
from . import instructions as ins
from . import types as ty
from .function import Function
from .values import Argument, Constant


def verify_function(function: Function) -> None:
    """Raise :class:`VerificationError` if the function is malformed."""
    if not function.blocks:
        raise VerificationError(f"{function.name}: function has no blocks")

    block_set = set(function.blocks)
    defined = set()
    for param in function.params:
        defined.add(param.vid)

    for block in function.blocks:
        if block.terminator is None:
            raise VerificationError(
                f"{function.name}/{block.label}: missing terminator"
            )
        for i, instr in enumerate(block.instructions):
            if instr.is_terminator and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"{function.name}/{block.label}: terminator not last"
                )
            _check_operands(function, block, instr)
            defined.add(instr.vid)
        for succ in block.successors():
            if succ not in block_set:
                raise VerificationError(
                    f"{function.name}/{block.label}: branch to foreign block "
                    f"{succ.label}"
                )

    _check_definitions_reach_uses(function)
    _check_loops(function)


def _check_operands(function, block, instr) -> None:
    for op in instr.operands:
        if op is None:
            raise VerificationError(
                f"{function.name}/{block.label}: null operand in "
                f"{instr.render()}"
            )
    if isinstance(instr, ins.FifoOp):
        if not isinstance(instr.stream.type, ty.StreamType):
            raise VerificationError(
                f"{function.name}: FIFO op on non-stream operand "
                f"{instr.stream.short()}"
            )
    if isinstance(instr, ins.AxiOp):
        if not isinstance(instr.port.type, ty.AxiType):
            raise VerificationError(
                f"{function.name}: AXI op on non-AXI operand "
                f"{instr.port.short()}"
            )
    if isinstance(instr, ins.BinOp):
        a, b = instr.operands
        if a.type != b.type:
            raise VerificationError(
                f"{function.name}: binop operand type mismatch "
                f"{a.type} vs {b.type}"
            )


def _check_definitions_reach_uses(function: Function) -> None:
    """Approximate dominance check: every operand must be defined by a
    parameter, a constant, or an instruction appearing earlier in the
    function's block order.  The front-end emits blocks in a topological
    order of the acyclic condensation (loop bodies follow headers), and
    values never flow from a later block backwards except through memory,
    so this linear check is sound for front-end-generated code."""
    seen = {p.vid for p in function.params}
    instr_positions = {}
    for position, instr in enumerate(function.iter_instructions()):
        instr_positions[instr.vid] = position

    position = 0
    for instr in function.iter_instructions():
        for op in instr.operands:
            if isinstance(op, (Constant, Argument)):
                continue
            if op.vid not in instr_positions:
                raise VerificationError(
                    f"{function.name}: operand {op.short()} of "
                    f"{instr.render()} is not defined in this function"
                )
            if instr_positions[op.vid] >= position and op.vid != instr.vid:
                # Defined later in layout order: only legal through loops,
                # which the front-end never generates for SSA values.
                raise VerificationError(
                    f"{function.name}: use of {op.short()} before definition"
                )
        seen.add(instr.vid)
        position += 1


def _check_loops(function: Function) -> None:
    for loop in function.loops:
        if loop.header not in loop.blocks:
            raise VerificationError(
                f"{function.name}: loop header {loop.header.label} not in "
                "member set"
            )
        if loop.pipelined:
            for inner in function.loops:
                if inner is not loop and loop.header in _ancestors(inner):
                    raise VerificationError(
                        f"{function.name}: pipelined loop "
                        f"{loop.header.label} contains another loop"
                    )
            if loop.ii < 1:
                raise VerificationError(
                    f"{function.name}: loop II must be >= 1, got {loop.ii}"
                )


def _ancestors(loop):
    seen = []
    current = loop.parent
    while current is not None:
        seen.append(current.header)
        current = current.parent
    return seen
