"""Type system for the OmniSim reproduction IR.

The type lattice mirrors what Vitis HLS exposes to C++ designs:

* arbitrary-width two's-complement integers (``ap_int`` / ``ap_uint``),
* fixed-point numbers (``ap_fixed`` / ``ap_ufixed``) stored as scaled
  integers,
* IEEE floats (``float`` / ``double``),
* arrays (possibly multi-dimensional), and
* hardware port types: FIFO streams and AXI masters.

Every scalar type knows how to *wrap* an arbitrary Python number into its
representable range, which is what the interpreter uses after every
arithmetic operation (Vitis ``AP_WRAP`` overflow semantics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class Type:
    """Base class for all IR types."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self)

    @property
    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, FixedType, FloatType))


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """Two's-complement integer of arbitrary ``width`` bits."""

    width: int
    signed: bool = True

    def __post_init__(self):
        if self.width < 1:
            raise ValueError(f"integer width must be >= 1, got {self.width}")

    def __str__(self) -> str:
        return f"{'i' if self.signed else 'u'}{self.width}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        if self.signed:
            return (1 << (self.width - 1)) - 1
        return (1 << self.width) - 1

    def wrap(self, value) -> int:
        """Wrap ``value`` into this type's range (two's complement)."""
        value = int(value)
        mask = (1 << self.width) - 1
        value &= mask
        if self.signed and value >> (self.width - 1):
            value -= 1 << self.width
        return value


@dataclass(frozen=True)
class FixedType(Type):
    """Fixed-point number: ``width`` total bits, ``int_bits`` integer bits.

    Stored in the interpreter as a raw scaled integer; ``frac_bits`` gives
    the scale factor 2**frac_bits.  Matches ``ap_fixed<W, I>`` with wrap
    overflow and truncation rounding.
    """

    width: int
    int_bits: int
    signed: bool = True

    def __str__(self) -> str:
        prefix = "fixed" if self.signed else "ufixed"
        return f"{prefix}<{self.width},{self.int_bits}>"

    @property
    def frac_bits(self) -> int:
        return self.width - self.int_bits

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits if self.frac_bits >= 0 else 1

    def wrap_raw(self, raw) -> int:
        """Wrap a raw (already scaled) integer into range."""
        return IntType(self.width, self.signed).wrap(int(raw))

    def from_float(self, value: float) -> int:
        """Quantize a Python float to this type's raw representation."""
        return self.wrap_raw(int(math.floor(value * self.scale)))

    def to_float(self, raw: int) -> float:
        return raw / self.scale


@dataclass(frozen=True)
class FloatType(Type):
    """IEEE floating point; only 32- and 64-bit widths are supported."""

    width: int = 32

    def __post_init__(self):
        if self.width not in (32, 64):
            raise ValueError("float width must be 32 or 64")

    def __str__(self) -> str:
        return f"f{self.width}"

    def wrap(self, value) -> float:
        value = float(value)
        if self.width == 32:
            # Round-trip through single precision.
            import struct

            return struct.unpack("f", struct.pack("f", value))[0]
        return value


@dataclass(frozen=True)
class ArrayType(Type):
    """N-dimensional array stored row-major; ``shape`` is a tuple of ints."""

    element: Type
    shape: tuple

    def __post_init__(self):
        if not self.shape:
            raise ValueError("array shape must be non-empty")
        if not all(isinstance(d, int) and d > 0 for d in self.shape):
            raise ValueError(f"bad array shape {self.shape}")

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"[{dims} x {self.element}]"

    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    def flat_index_strides(self) -> tuple:
        """Row-major strides for multi-dimensional indexing."""
        strides = []
        acc = 1
        for d in reversed(self.shape):
            strides.append(acc)
            acc *= d
        return tuple(reversed(strides))


@dataclass(frozen=True)
class StreamType(Type):
    """A FIFO stream carrying elements of ``element`` type."""

    element: Type

    def __str__(self) -> str:
        return f"stream<{self.element}>"


@dataclass(frozen=True)
class AxiType(Type):
    """An AXI master port addressing elements of ``element`` type."""

    element: Type

    def __str__(self) -> str:
        return f"axi<{self.element}>"


@dataclass(frozen=True)
class TupleType(Type):
    """Aggregate result type (used by non-blocking reads: (ok, data))."""

    elements: tuple

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elements) + ")"


# Canonical singletons -------------------------------------------------------

void = VoidType()
i1 = IntType(1, signed=False)
i8 = IntType(8)
i16 = IntType(16)
i32 = IntType(32)
i64 = IntType(64)
u8 = IntType(8, signed=False)
u16 = IntType(16, signed=False)
u32 = IntType(32, signed=False)
u64 = IntType(64, signed=False)
f32 = FloatType(32)
f64 = FloatType(64)


def int_type(width: int, signed: bool = True) -> IntType:
    return IntType(width, signed)


def fixed(width: int, int_bits: int, signed: bool = True) -> FixedType:
    return FixedType(width, int_bits, signed)


def is_integer(t: Type) -> bool:
    return isinstance(t, IntType)


def is_numeric(t: Type) -> bool:
    return isinstance(t, (IntType, FixedType, FloatType))


def common_type(a: Type, b: Type) -> Type:
    """C-like usual arithmetic conversion between two scalar types."""
    if a == b:
        return a
    # Floats dominate.
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        wa = a.width if isinstance(a, FloatType) else 0
        wb = b.width if isinstance(b, FloatType) else 0
        return FloatType(max(32, wa, wb))
    # Fixed dominates ints.
    if isinstance(a, FixedType) and isinstance(b, FixedType):
        frac = max(a.frac_bits, b.frac_bits)
        ib = max(a.int_bits, b.int_bits)
        return FixedType(ib + frac, ib, a.signed or b.signed)
    if isinstance(a, FixedType):
        return a
    if isinstance(b, FixedType):
        return b
    # Both ints: widen.
    assert isinstance(a, IntType) and isinstance(b, IntType)
    signed = a.signed or b.signed
    return IntType(max(a.width, b.width), signed)


def default_value(t: Type):
    """Zero value of a scalar type, in interpreter representation."""
    if isinstance(t, IntType):
        return 0
    if isinstance(t, FixedType):
        return 0  # raw representation
    if isinstance(t, FloatType):
        return 0.0
    raise TypeError(f"no default value for {t}")
