"""Core SSA value classes for the IR.

The IR is deliberately close to LLVM at ``-O0``: mutable program variables
live in :class:`~repro.ir.instructions.Alloca` slots accessed via loads and
stores, so no phi nodes are needed.  Every instruction *is* a value (possibly
of void type).
"""

from __future__ import annotations

import itertools

from . import types as ty

_value_counter = itertools.count()


class Value:
    """Anything that can appear as an instruction operand."""

    __slots__ = ("type", "name", "vid")

    def __init__(self, type_: ty.Type, name: str = ""):
        self.type = type_
        self.name = name
        self.vid = next(_value_counter)

    def short(self) -> str:
        return f"%{self.name or self.vid}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """Immediate constant.  ``value`` is stored in interpreter representation
    (raw scaled int for fixed-point types)."""

    __slots__ = ("value",)

    def __init__(self, type_: ty.Type, value):
        super().__init__(type_, "")
        if isinstance(type_, ty.IntType):
            value = type_.wrap(value)
        elif isinstance(type_, ty.FixedType):
            value = type_.wrap_raw(value)
        elif isinstance(type_, ty.FloatType):
            value = type_.wrap(value)
        self.value = value

    def short(self) -> str:
        if isinstance(self.type, ty.FixedType):
            return f"{self.type.to_float(self.value)}:{self.type}"
        return f"{self.value}:{self.type}"


class Argument(Value):
    """A function parameter.  ``kind`` distinguishes hardware port classes;
    see :mod:`repro.hls.ports` for the user-facing declarations."""

    __slots__ = ("kind", "index")

    #: Recognised argument kinds.
    KINDS = (
        "stream_in",
        "stream_out",
        "buffer",       # array in/out (BRAM-like)
        "scalar_out",   # single-element output register
        "axi",          # AXI master port
        "param",        # compile-time constant (resolved before scheduling)
    )

    def __init__(self, type_: ty.Type, name: str, kind: str, index: int):
        if kind not in self.KINDS:
            raise ValueError(f"unknown argument kind {kind!r}")
        super().__init__(type_, name)
        self.kind = kind
        self.index = index

    def short(self) -> str:
        return f"%{self.name}"
