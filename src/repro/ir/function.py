"""Functions, basic blocks, and structured-loop metadata.

Because the front-end lowers structured Python source (no ``goto``), every
loop in the CFG is known at construction time and is recorded as a
:class:`LoopMeta`.  The scheduler and interpreter rely on this metadata to
implement loop pipelining without rediscovering loops from the CFG.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .instructions import Instruction

_block_counter = itertools.count()


class BasicBlock:
    """Straight-line instruction sequence ending in a terminator."""

    def __init__(self, label: str = ""):
        # Labels must be unique per function (schedules are keyed by them);
        # a global counter keeps user-provided hints readable and distinct.
        serial = next(_block_counter)
        self.label = f"{label}{serial}" if label else f"bb{serial}"
        self.instructions: list[Instruction] = []
        self.function: "Function | None" = None
        #: Innermost loop this block belongs to (or None).
        self.loop: "LoopMeta | None" = None
        #: True if this block is its loop's header.
        self.is_loop_header = False

    def append(self, instr: Instruction) -> Instruction:
        if self.is_terminated:
            raise RuntimeError(f"appending to terminated block {self.label}")
        instr.block = self
        self.instructions.append(instr)
        return instr

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self):
        term = self.terminator
        if term is None:
            return []
        from .instructions import Branch, Jump

        if isinstance(term, Jump):
            return [term.target]
        if isinstance(term, Branch):
            return [term.if_true, term.if_false]
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BasicBlock {self.label} ({len(self.instructions)} instrs)>"


@dataclass
class LoopMeta:
    """Structured-loop record attached by the front-end.

    ``header`` is evaluated once per iteration (condition); ``blocks`` is the
    set of all member blocks including header and latch; ``exit`` is the
    unique block control reaches after the loop.
    """

    header: BasicBlock
    latch: BasicBlock | None = None
    exit: BasicBlock | None = None
    blocks: set = field(default_factory=set)
    parent: "LoopMeta | None" = None
    pipelined: bool = False
    ii: int = 1
    #: Optional static trip-count hint (for the C-synthesis report).
    trip_hint: int | None = None
    name: str = ""

    @property
    def depth(self) -> int:
        d, p = 0, self.parent
        while p is not None:
            d, p = d + 1, p.parent
        return d


class Function:
    """A compiled hardware module body."""

    def __init__(self, name: str, params):
        self.name = name
        self.params = list(params)
        self.blocks: list[BasicBlock] = []
        self.loops: list[LoopMeta] = []
        #: Names of dataflow sub-task functions launched by this function
        #: (top-level dataflow regions only; populated by the Design layer).
        self.attributes: dict = {}

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise RuntimeError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def add_block(self, block: BasicBlock) -> BasicBlock:
        block.function = self
        self.blocks.append(block)
        return block

    def param(self, name: str):
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"{self.name} has no parameter {name!r}")

    def iter_instructions(self):
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"
