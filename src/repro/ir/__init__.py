"""LLVM-flavoured intermediate representation for HLS modules.

The front-end (:mod:`repro.frontend`) lowers the Python-embedded HLS dialect
into this IR; the scheduler (:mod:`repro.synthesis`) annotates it with a
static schedule; the interpreter (:mod:`repro.interp`) executes it.
"""

from . import instructions, types
from .builder import IRBuilder
from .function import BasicBlock, Function, LoopMeta
from .printer import function_to_text
from .values import Argument, Constant, Value
from .verifier import verify_function

__all__ = [
    "Argument",
    "BasicBlock",
    "Constant",
    "Function",
    "IRBuilder",
    "LoopMeta",
    "Value",
    "function_to_text",
    "instructions",
    "types",
    "verify_function",
]
