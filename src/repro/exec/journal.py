"""Journaled checkpoints: append-only JSONL of completed work.

A sweep that dies — OOM, SIGKILL, Ctrl-C, power loss — must not throw
away the configurations it already evaluated.  The supervised executor
appends one JSON line per *completed* unit of work to a
:class:`CheckpointJournal`; a resumed invocation replays the journal,
reconstructs those outcomes, and evaluates only what is missing.

File format (UTF-8, one JSON document per line)::

    {"journal": "repro-checkpoint", "version": 1, "identity": {...}}
    {"k": "<unit key>", "o": {...outcome...}}
    {"k": "<unit key>", "o": {...outcome...}}
    ...

* The **header** line carries an *identity* dict describing the sweep
  the journal belongs to (design name, trace-artifact digest, depth
  space, sampling seed, ...).  Resuming validates identity equality —
  a journal from a different design, an edited design source (new
  digest) or a different space raises
  :class:`~repro.errors.CheckpointError` instead of silently merging
  unrelated results.
* **Outcome** lines are appended and flushed as each unit completes, so
  a SIGKILL loses at most the in-flight work.  Keys are
  content-derived (canonical JSON of the configuration), not positional,
  so shards and retries journal consistently.
* The reader is **crash-tolerant**: a truncated or corrupt trailing
  line (the write the crash interrupted) is discarded, and the file is
  truncated back to the last intact line before appending resumes.

An existing journal with completed entries is only reused when the
caller explicitly opts in (``resume=True`` / ``--resume``); otherwise
:class:`~repro.errors.CheckpointError` explains the choice.  The module
also tracks every open journal so the CLI can flush them on
``KeyboardInterrupt`` before exiting with status 130.
"""

from __future__ import annotations

import json
import os
import weakref

from ..errors import CheckpointError

MAGIC = "repro-checkpoint"
VERSION = 1

#: journals currently open anywhere in the process (the CLI flushes
#: these on KeyboardInterrupt); weak so a dropped journal vanishes
_ACTIVE: "weakref.WeakSet[CheckpointJournal]" = weakref.WeakSet()


def read_journal(path):
    """Tolerant journal reader.

    Returns ``(identity, completed, good_size)`` where ``completed``
    maps unit key -> outcome dict (later duplicates win) and
    ``good_size`` is the byte offset of the last intact line — the
    point to truncate to before appending.  Raises
    :class:`~repro.errors.CheckpointError` when the file is not a
    checkpoint journal at all.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    offset = 0
    identity = None
    completed: dict = {}
    good_size = 0
    for raw in data.split(b"\n"):
        line_end = offset + len(raw) + 1  # +1 for the newline
        if line_end > len(data) + 1:  # pragma: no cover - defensive
            break
        stripped = raw.strip()
        if not stripped:
            offset = line_end
            continue
        try:
            doc = json.loads(stripped.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            # The interrupted (or corrupt) tail: everything after the
            # last intact line is discarded and re-derived.
            break
        if identity is None:
            if (not isinstance(doc, dict) or doc.get("journal") != MAGIC):
                raise CheckpointError(
                    f"{path} is not a checkpoint journal "
                    "(missing header line)"
                )
            if doc.get("version") != VERSION:
                raise CheckpointError(
                    f"{path}: unsupported journal version "
                    f"{doc.get('version')!r} (this build writes "
                    f"version {VERSION})"
                )
            identity = doc.get("identity") or {}
        elif isinstance(doc, dict) and "k" in doc and "o" in doc:
            completed[doc["k"]] = doc["o"]
        else:
            break  # structurally wrong line: stop trusting the tail
        # Only count fully newline-terminated lines as durable.
        if line_end <= len(data):
            good_size = line_end
        offset = line_end
    if identity is None:
        raise CheckpointError(
            f"{path} is not a checkpoint journal (no intact header line)"
        )
    return identity, completed, good_size


class CheckpointJournal:
    """One open, append-only checkpoint journal."""

    def __init__(self, path, fh, identity: dict):
        self.path = os.fspath(path)
        self._fh = fh
        self.identity = identity
        #: outcome lines appended by *this* process (not resumed ones)
        self.appended = 0
        _ACTIVE.add(self)

    @classmethod
    def open(cls, path, identity: dict, *, resume: bool = False):
        """Open (creating or resuming) a journal for one sweep.

        Returns ``(journal, completed)``; ``completed`` is empty for a
        fresh journal.  Raises :class:`~repro.errors.CheckpointError`
        when an existing journal's identity does not match, or when it
        already holds completed entries and ``resume`` is not set.
        """
        path = os.fspath(path)
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if not exists:
            fh = open(path, "w", encoding="utf-8")
            fh.write(json.dumps(
                {"journal": MAGIC, "version": VERSION,
                 "identity": identity},
                sort_keys=True) + "\n")
            fh.flush()
            return cls(path, fh, identity), {}
        found, completed, good_size = read_journal(path)
        if found != identity:
            raise CheckpointError(
                f"checkpoint journal {path} belongs to a different "
                f"sweep: journal identity {found!r} != current "
                f"{identity!r} (delete the file or point --checkpoint "
                "elsewhere)"
            )
        if completed and not resume:
            raise CheckpointError(
                f"checkpoint journal {path} already has "
                f"{len(completed)} completed entr"
                f"{'y' if len(completed) == 1 else 'ies'}; pass "
                "--resume to continue it or delete the file to start "
                "over"
            )
        if good_size < os.path.getsize(path):
            # Drop the interrupted trailing write before appending.
            with open(path, "r+b") as trunc:
                trunc.truncate(good_size)
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, fh, identity)
        return journal, (completed if resume else {})

    def append(self, key: str, outcome: dict) -> None:
        """Durably record one completed unit (flushed per line)."""
        if self._fh is None:
            return
        self._fh.write(json.dumps({"k": key, "o": outcome},
                                  sort_keys=True) + "\n")
        self._fh.flush()
        self.appended += 1

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self.flush()
            except OSError:
                pass
            self._fh.close()
            self._fh = None
        _ACTIVE.discard(self)

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def close_active_journals() -> list:
    """Flush and close every journal open in this process; returns the
    paths flushed.  The CLI's KeyboardInterrupt handler calls this so an
    interrupted sweep's checkpoint survives intact."""
    paths = []
    for journal in list(_ACTIVE):
        paths.append(journal.path)
        try:
            journal.close()
        except OSError:  # pragma: no cover - best-effort on teardown
            pass
    return sorted(paths)
