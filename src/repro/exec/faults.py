"""Deterministic fault injection for the supervised executor.

Every resilience path in :mod:`repro.exec` — worker death, hangs past
the chunk timeout, transient simulation errors — must be testable in CI
without relying on real OOM kills or scheduler luck.  A
:class:`FaultPlan` injects those failures at chosen *configuration
indices* (the position in the sweep's full enumerated config list, so a
fault names one reproducible unit of work):

* ``crash`` — the worker process exits hard (``os._exit``), modelling a
  segfault / OOM kill; the pool breaks with ``BrokenProcessPool``.
  In-process (``jobs=1``) it raises
  :class:`~repro.errors.WorkerCrashError` instead (a serial run cannot
  kill itself and still be supervised).
* ``hang`` — the worker sleeps for ``seconds`` (default 30), tripping
  the per-chunk wall-clock timeout.  In-process it simply sleeps, which
  is exactly what the SIGKILL-and-resume CI smoke needs: a
  deterministic window in which to kill the process.
* ``error`` — raises a transient :class:`~repro.errors.SimulationError`;
  the supervisor retries and the config succeeds on a later attempt.

Spec grammar (the ``REPRO_FAULTS`` environment variable and the
``faults=`` parameter share it)::

    KIND@INDEX[:TIMES[:SECONDS]] [; more entries]

``TIMES`` is how many submissions the fault fires on (default 1 — a
*transient* fault; ``inf`` makes it permanent, i.e. a poison config that
ends up quarantined).  ``SECONDS`` is the hang duration.  Examples::

    crash@3                 one worker crash when config 3 first runs
    hang@5:1:60             one 60-second hang at config 5
    error@7:2               config 7 fails its first two attempts
    crash@9:inf             config 9 kills every worker that runs it

Determinism: the plan is consumed on the *parent* side — the supervisor
asks :meth:`FaultPlan.take` for each unit at submission time and ships
the directive with the work, so remaining-count bookkeeping survives
worker death and pool respawns, and a transient fault provably fires
exactly ``TIMES`` times regardless of retry scheduling.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

from ..errors import SimulationError, WorkerCrashError

#: environment variable carrying a fault spec (see module docstring)
ENV_VAR = "REPRO_FAULTS"

#: recognized fault kinds
KINDS = ("crash", "hang", "error")

#: default sleep for ``hang`` faults — long enough to trip any sane
#: chunk timeout, short enough that an unsupervised test still finishes
DEFAULT_HANG_SECONDS = 30.0

#: exit status used by injected worker crashes (visible in pool logs)
CRASH_EXIT_CODE = 96


@dataclass
class FaultRule:
    """One injection site: fire ``kind`` at config ``index`` for the
    next ``times`` submissions."""

    kind: str
    index: int
    times: float  # remaining submissions to fire on; math.inf = poison
    seconds: float = DEFAULT_HANG_SECONDS


class FaultPlan:
    """Parent-side fault schedule, consumed one submission at a time."""

    def __init__(self, rules):
        self._rules: dict[int, FaultRule] = {}
        for rule in rules:
            if rule.index in self._rules:
                raise ValueError(
                    f"duplicate fault rule for config index {rule.index}"
                )
            self._rules[rule.index] = rule
        #: directives handed out so far (provenance counter)
        self.injected = 0

    def __bool__(self) -> bool:
        return bool(self._rules)

    def take(self, index: int) -> dict | None:
        """The wire directive for submitting config ``index`` now, or
        ``None``.  Decrements the rule's remaining count — call exactly
        once per submission."""
        rule = self._rules.get(index)
        if rule is None or rule.times <= 0:
            return None
        rule.times -= 1
        self.injected += 1
        return {"kind": rule.kind, "seconds": rule.seconds}


def parse_faults(spec: str) -> FaultPlan:
    """Parse a fault spec string (see module docstring) into a plan."""
    rules = []
    for entry in spec.replace(",", ";").split(";"):
        entry = entry.strip()
        if not entry:
            continue
        kind, sep, rest = entry.partition("@")
        kind = kind.strip().lower()
        if not sep or kind not in KINDS:
            raise ValueError(
                f"bad fault entry {entry!r}: expected "
                f"KIND@INDEX[:TIMES[:SECONDS]] with KIND in {KINDS}"
            )
        parts = rest.split(":")
        if not 1 <= len(parts) <= 3:
            raise ValueError(
                f"bad fault entry {entry!r}: expected "
                "KIND@INDEX[:TIMES[:SECONDS]]"
            )
        try:
            index = int(parts[0])
            times = (math.inf if len(parts) > 1
                     and parts[1].strip().lower() in ("inf", "-1")
                     else float(int(parts[1])) if len(parts) > 1 else 1.0)
            seconds = (float(parts[2]) if len(parts) > 2
                       else DEFAULT_HANG_SECONDS)
        except ValueError:
            raise ValueError(
                f"bad fault entry {entry!r}: INDEX/TIMES/SECONDS must be "
                "numbers"
            ) from None
        if index < 0 or times < 0 or seconds < 0:
            raise ValueError(
                f"bad fault entry {entry!r}: values must be >= 0"
            )
        rules.append(FaultRule(kind, index, times, seconds))
    return FaultPlan(rules)


def resolve_plan(setting=None) -> FaultPlan | None:
    """Turn a user-facing fault setting into a plan.

    ``None`` consults :data:`ENV_VAR` (no plan when unset/empty);
    ``False`` disables injection even if the env var is set; a string is
    parsed as a spec; an existing :class:`FaultPlan` passes through.
    """
    if setting is None:
        env = os.environ.get(ENV_VAR, "").strip()
        return parse_faults(env) if env else None
    if setting is False:
        return None
    if isinstance(setting, FaultPlan):
        return setting
    if isinstance(setting, str):
        plan = parse_faults(setting)
        return plan if plan else None
    raise TypeError(
        f"faults must be a spec string, FaultPlan, False or None; "
        f"got {type(setting).__name__}"
    )


def apply_fault(directive: dict, in_process: bool = False) -> None:
    """Execute one wire directive at the injection point.

    Pool workers call this with ``in_process=False`` (a ``crash`` really
    kills the process); the serial executor passes ``in_process=True``
    (a ``crash`` raises :class:`~repro.errors.WorkerCrashError` so the
    retry path runs without killing the interpreter).
    """
    kind = directive["kind"]
    if kind == "crash":
        if in_process:
            raise WorkerCrashError("injected worker crash (in-process)")
        os._exit(CRASH_EXIT_CODE)
    elif kind == "hang":
        time.sleep(directive.get("seconds", DEFAULT_HANG_SECONDS))
    elif kind == "error":
        raise SimulationError("injected transient simulation error")
    else:  # pragma: no cover - parse_faults rejects unknown kinds
        raise ValueError(f"unknown fault kind {kind!r}")
