"""Supervised work-queue execution over a process pool.

``repro.dse`` and ``repro.api.run_many`` used to drive bare
``pool.map`` over contiguous chunks: one OOM-killed worker raised
``BrokenProcessPool`` and discarded every completed configuration, a
hung engine stalled the sweep forever, and nothing distinguished "this
config crashes the simulator" from "the scheduler had a bad day".  The
:class:`Supervisor` replaces that with an explicit work queue:

* chunks are submitted as individual futures and harvested with
  :func:`concurrent.futures.wait`, so one failure costs one chunk;
* each chunk carries a wall-clock **deadline** (:class:`ExecPolicy`
  ``timeout``); an expired chunk's pool is killed and respawned, and
  the chunk is retried;
* a failed multi-config chunk is **split in half** and both halves
  retried, binary-searching for the configuration that actually caused
  the failure; the innocent majority completes normally;
* retries use **exponential backoff with seeded jitter** so a flapping
  resource isn't hammered;
* a single configuration that keeps failing is promoted to a **solo
  run** — executed with the pool to itself once other work drains — so
  collateral damage from a neighbouring crash can never be mistaken
  for guilt.  Only a solo failure quarantines the config, as a
  structured outcome rather than an aborted sweep;
* ``BrokenProcessPool`` is recovered by respawning the pool; chunks
  that were merely in flight are requeued without penalty.

The supervisor is generic: callers provide a ``pool_factory`` (a fresh
``ProcessPoolExecutor`` with their initializer) and a picklable
``chunk_fn`` executed in workers.  The wire format for one chunk is a
list of ``(payload, fault_directive)`` pairs — directives come from
:class:`repro.exec.faults.FaultPlan` and are consumed on the parent
side at submission time, so fault schedules stay deterministic across
retries and respawns.  ``chunk_fn`` must return one outcome value per
pair, in order.

:func:`run_serial` is the ``jobs=1`` twin: same retry/backoff/
quarantine policy and the same report shape, no pool.  (A serial run
cannot outlive a hang — there is no second process to enforce a
deadline — which is exactly what the SIGKILL-and-resume CI smoke
exploits.)
"""

from __future__ import annotations

import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import ChunkTimeoutError, ReproError, WorkerCrashError
from .faults import apply_fault


def chunk_contiguous(items, pieces):
    """Split ``items`` into at most ``pieces`` contiguous, non-empty
    chunks of near-equal size (earlier chunks take the remainder).

    Returns ``[]`` for empty input — never an empty chunk, so pool
    workers always receive real work.
    """
    items = list(items)
    if not items:
        return []
    pieces = max(1, min(int(pieces), len(items)))
    base, extra = divmod(len(items), pieces)
    chunks = []
    start = 0
    for i in range(pieces):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


@dataclass(frozen=True)
class Unit:
    """One schedulable unit of work.

    ``index`` is the unit's position in the caller's full enumeration
    (fault rules address it); ``key`` is a content-derived string the
    checkpoint journal stores outcomes under; ``payload`` is whatever
    the caller's ``chunk_fn`` consumes.
    """

    index: int
    key: str
    payload: object


@dataclass
class ExecPolicy:
    """Knobs governing supervised execution.

    ``timeout``
        Per-chunk wall-clock deadline in seconds (``None`` = no hang
        protection).  When set, at most ``jobs`` chunks are in flight
        so a submitted chunk starts executing immediately and its
        deadline measures real execution time, not queue time.
    ``max_retries``
        Failures a single configuration may accrue before its verdict
        run; the verdict itself is a solo run (pool branch) so
        collateral pool breakage can never quarantine an innocent
        config.
    ``backoff_base`` / ``backoff_cap``
        Exponential backoff: retry *n* waits
        ``min(cap, base * 2**(n-1))`` scaled by seeded jitter in
        ``[0.5, 1.5)``.
    ``seed``
        Seed for the jitter RNG — supervision is deterministic given
        the same failures.
    ``chunks_per_worker``
        Initial chunking granularity: ``jobs * chunks_per_worker``
        chunks, matching the old ``pool.map`` sizing.
    """

    timeout: float | None = None
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    seed: int = 0
    chunks_per_worker: int = 4

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")
        if self.chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")


@dataclass
class SupervisionReport:
    """Provenance block for one supervised run (``SweepResult.
    supervision`` / ``run_many`` provenance)."""

    mode: str = "pool"
    jobs: int = 1
    units: int = 0
    retries: int = 0
    respawns: int = 0
    splits: int = 0
    timeouts: int = 0
    crashes: int = 0
    errors: int = 0
    solo_runs: int = 0
    faults_injected: int = 0
    seconds: float = 0.0
    quarantined: list = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "jobs": self.jobs,
            "units": self.units,
            "retries": self.retries,
            "respawns": self.respawns,
            "splits": self.splits,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "solo_runs": self.solo_runs,
            "faults_injected": self.faults_injected,
            "quarantined": [dict(q) for q in self.quarantined],
            "seconds": self.seconds,
        }


class _Chunk:
    """A queued slice of units plus its failure history."""

    __slots__ = ("units", "suspects", "not_before", "solo")

    def __init__(self, units, suspects=0, not_before=0.0, solo=False):
        self.units = list(units)
        self.suspects = suspects      # failures attributed so far
        self.not_before = not_before  # monotonic backoff gate
        self.solo = solo              # must run with the pool to itself


def _quarantine_detail(unit: Unit, exc: BaseException, attempts: int) -> dict:
    return {
        "index": unit.index,
        "key": unit.key,
        "reason": type(exc).__name__,
        "message": str(exc),
        "attempts": attempts,
    }


class Supervisor:
    """Drives a set of :class:`Unit`\\ s through a worker pool to a
    complete verdict: every unit ends ``("ok", value)`` or
    ``("quarantined", detail)`` — never lost.

    ``pool_factory``
        Zero-argument callable returning a fresh
        ``ProcessPoolExecutor`` (the supervisor respawns pools after
        crashes and kills, so creation must be repeatable).
    ``chunk_fn``
        Picklable function run in workers; receives
        ``[(payload, fault_directive_or_None), ...]`` and returns one
        outcome per pair, in order.
    ``record``
        Optional ``record(unit, status, value)`` callback invoked the
        moment each unit completes (``status`` is ``"ok"`` or
        ``"quarantined"``) — the checkpoint journal hook.
    """

    def __init__(self, pool_factory, chunk_fn, *, jobs,
                 policy=None, fault_plan=None, record=None):
        self.pool_factory = pool_factory
        self.chunk_fn = chunk_fn
        self.jobs = max(1, int(jobs))
        self.policy = policy if policy is not None else ExecPolicy()
        self.fault_plan = fault_plan
        self.record = record
        self.report = SupervisionReport(mode="pool", jobs=self.jobs)
        self._rng = random.Random(self.policy.seed)
        self._pool = None
        self._queue: "deque[_Chunk]" = deque()
        self._inflight: dict = {}   # future -> (_Chunk, deadline | None)
        self._results: dict = {}    # unit index -> (status, value)

    # -- public ---------------------------------------------------------

    def run(self, units):
        """Execute ``units``; returns ``(results, report)`` where
        ``results`` maps unit index to ``("ok", value)`` or
        ``("quarantined", detail)``."""
        units = list(units)
        self.report.units = len(units)
        started = time.monotonic()
        pieces = self.jobs * self.policy.chunks_per_worker
        for group in chunk_contiguous(units, pieces):
            self._queue.append(_Chunk(group))
        try:
            while self._queue or self._inflight:
                self._fill()
                if not self._inflight:
                    if not self._queue:
                        break
                    # Everything queued is backing off; nap until the
                    # earliest gate opens.
                    gap = (min(c.not_before for c in self._queue)
                           - time.monotonic())
                    time.sleep(min(max(gap, 0.001), 0.25))
                    continue
                self._handle_done(self._wait())
                self._check_deadlines()
        finally:
            self._shutdown()
            if self.fault_plan is not None:
                self.report.faults_injected = self.fault_plan.injected
            self.report.seconds = round(time.monotonic() - started, 6)
        return self._results, self.report

    # -- scheduling -----------------------------------------------------

    @property
    def _cap(self):
        # With a timeout, cap in-flight chunks at the worker count so a
        # submitted chunk starts immediately and its deadline measures
        # execution, not time spent queued behind other chunks.
        return self.jobs if self.policy.timeout is not None else None

    def _fill(self):
        rotations = 0
        while self._queue and (self._cap is None
                               or len(self._inflight) < self._cap):
            if any(chunk.solo for chunk, _ in self._inflight.values()):
                break  # a solo verdict run owns the pool
            chunk = self._queue[0]
            now = time.monotonic()
            if chunk.not_before > now or (chunk.solo and self._inflight):
                self._queue.rotate(-1)  # let ready/non-solo work pass
                rotations += 1
                if rotations >= len(self._queue):
                    break
                continue
            self._queue.popleft()
            rotations = 0
            if not self._submit(chunk):
                break

    def _submit(self, chunk) -> bool:
        if self._pool is None:
            self._pool = self.pool_factory()
        wire = []
        for unit in chunk.units:
            directive = (self.fault_plan.take(unit.index)
                         if self.fault_plan is not None else None)
            wire.append((unit.payload, directive))
        try:
            future = self._pool.submit(self.chunk_fn, wire)
        except (BrokenProcessPool, RuntimeError):
            # The pool broke between harvests; recycle everything.
            self._queue.appendleft(chunk)
            self._requeue_inflight()
            self._respawn()
            return False
        deadline = (time.monotonic() + self.policy.timeout
                    if self.policy.timeout is not None else None)
        self._inflight[future] = (chunk, deadline)
        if chunk.solo:
            self.report.solo_runs += 1
        return True

    def _wait(self):
        now = time.monotonic()
        horizons = []
        if self.policy.timeout is not None:
            horizons += [deadline - now
                         for _, deadline in self._inflight.values()]
        if self._queue and (self._cap is None
                            or len(self._inflight) < self._cap):
            horizons.append(min(c.not_before for c in self._queue) - now)
        wait_for = max(0.01, min(horizons)) if horizons else None
        done, _ = wait(list(self._inflight), timeout=wait_for,
                       return_when=FIRST_COMPLETED)
        return done

    # -- outcome handling -----------------------------------------------

    def _handle_done(self, done):
        broken = []
        for future in done:
            chunk, _ = self._inflight.pop(future)
            try:
                values = future.result()
            except BrokenProcessPool:
                broken.append(chunk)
            except Exception as exc:
                # An exception the chunk_fn let escape (injected
                # transient error, unexpected worker failure).
                self._failed(chunk, exc)
            else:
                for unit, value in zip(chunk.units, values):
                    self._complete(unit, value)
        if broken:
            # The pool is gone.  The chunks whose futures raised are
            # suspects; everything merely in flight is collateral and
            # goes back unpenalized.  (Collective suspicion is safe:
            # quarantine additionally requires failing a solo run.)
            self._requeue_inflight()
            self._respawn()
            for chunk in broken:
                self._failed(chunk, WorkerCrashError(
                    "worker process died while executing this chunk "
                    "(BrokenProcessPool)"))

    def _check_deadlines(self):
        if self.policy.timeout is None or not self._inflight:
            return
        now = time.monotonic()
        expired = [future for future, (_, deadline) in self._inflight.items()
                   if deadline is not None and now >= deadline]
        if not expired:
            return
        hung = [self._inflight.pop(future)[0] for future in expired]
        # Hung workers hold pool slots hostage; kill the whole pool,
        # requeue the innocent in-flight chunks untouched, and charge
        # the expired ones.
        self._requeue_inflight()
        self._respawn(kill=True)
        for chunk in hung:
            self._failed(chunk, ChunkTimeoutError(
                f"chunk of {len(chunk.units)} config(s) exceeded the "
                f"{self.policy.timeout:g}s wall-clock timeout"))

    def _failed(self, chunk, exc):
        if isinstance(exc, WorkerCrashError):
            self.report.crashes += 1
        elif isinstance(exc, ChunkTimeoutError):
            self.report.timeouts += 1
        else:
            self.report.errors += 1
        if len(chunk.units) > 1:
            # Split in half to isolate whichever config is to blame;
            # both halves inherit the suspicion.
            mid = (len(chunk.units) + 1) // 2
            self.report.splits += 1
            self.report.retries += 1
            for part in (chunk.units[:mid], chunk.units[mid:]):
                self._requeue(_Chunk(part, suspects=chunk.suspects + 1))
            return
        chunk.suspects += 1
        if chunk.solo:
            # It failed with the pool to itself: unambiguous verdict.
            self._quarantine(chunk.units[0], exc, chunk.suspects)
            return
        if chunk.suspects > self.policy.max_retries:
            # Out of ordinary retries — schedule the verdict run.
            chunk.solo = True
        self.report.retries += 1
        self._requeue(chunk)

    def _requeue(self, chunk):
        n = max(0, chunk.suspects - 1)
        delay = min(self.policy.backoff_cap,
                    self.policy.backoff_base * (2 ** n))
        chunk.not_before = (time.monotonic()
                            + delay * (0.5 + self._rng.random()))
        self._queue.append(chunk)

    def _requeue_inflight(self):
        for chunk, _ in self._inflight.values():
            chunk.not_before = 0.0
            self._queue.append(chunk)
        self._inflight.clear()

    def _complete(self, unit, value):
        self._results[unit.index] = ("ok", value)
        if self.record is not None:
            self.record(unit, "ok", value)

    def _quarantine(self, unit, exc, attempts):
        detail = _quarantine_detail(unit, exc, attempts)
        self.report.quarantined.append(detail)
        self._results[unit.index] = ("quarantined", detail)
        if self.record is not None:
            self.record(unit, "quarantined", detail)

    # -- pool lifecycle -------------------------------------------------

    def _respawn(self, kill=False):
        pool, self._pool = self._pool, None
        self.report.respawns += 1
        if pool is None:
            return
        if kill:
            for proc in list((getattr(pool, "_processes", None)
                              or {}).values()):
                try:
                    proc.kill()
                except (OSError, AttributeError):  # pragma: no cover
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - teardown is best-effort
            pass

    def _shutdown(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover
                pass


def run_serial(units, run_unit, *, policy=None, fault_plan=None,
               record=None, run_batch=None, batch_size=0):
    """The ``jobs=1`` twin of :class:`Supervisor`: same retry, backoff
    and quarantine policy, same ``(results, report)`` shape, no pool.

    ``run_unit(payload)`` evaluates one unit in-process.  Fault
    directives are applied in-process too (``crash`` raises
    :class:`~repro.errors.WorkerCrashError` instead of killing the
    interpreter); any :class:`~repro.errors.ReproError` escaping the
    evaluation is treated as transient and retried up to
    ``max_retries`` times before the unit is quarantined.

    ``run_batch(payloads) -> [value, ...]`` is the optional batched
    evaluator (the vectorized retiming path): when provided with
    ``batch_size > 1`` and no fault plan, units are evaluated in
    ``batch_size`` slices — ``record`` still fires once per unit, so
    checkpoint granularity is unchanged.  A :class:`ReproError` escaping
    a batch demotes that slice to the per-unit path above, which retries
    and quarantines exactly as without batching.  Fault injection
    always uses the per-unit path: directives target individual unit
    indices and must fire immediately before their target's evaluation.
    """
    policy = policy if policy is not None else ExecPolicy()
    units = list(units)
    if (run_batch is not None and batch_size > 1 and fault_plan is None
            and len(units) > 1):
        report = SupervisionReport(mode="serial", jobs=1,
                                   units=len(units))
        results: dict = {}
        started = time.monotonic()
        for lo in range(0, len(units), batch_size):
            group = units[lo:lo + batch_size]
            try:
                values = run_batch([u.payload for u in group])
            except ReproError:
                # The batched path is an optimization, never a verdict:
                # demote the slice to the per-unit loop, which owns
                # retry/backoff/quarantine.
                report.errors += 1
                report.retries += 1
                sub_results, sub = run_serial(group, run_unit,
                                              policy=policy,
                                              record=record)
                results.update(sub_results)
                report.retries += sub.retries
                report.errors += sub.errors
                report.crashes += sub.crashes
                report.quarantined.extend(sub.quarantined)
                continue
            for unit, value in zip(group, values):
                results[unit.index] = ("ok", value)
                if record is not None:
                    record(unit, "ok", value)
        report.seconds = round(time.monotonic() - started, 6)
        return results, report
    rng = random.Random(policy.seed)
    report = SupervisionReport(mode="serial", jobs=1, units=len(units))
    results: dict = {}
    started = time.monotonic()
    for unit in units:
        attempts = 0
        while True:
            directive = (fault_plan.take(unit.index)
                         if fault_plan is not None else None)
            try:
                if directive is not None:
                    apply_fault(directive, in_process=True)
                value = run_unit(unit.payload)
            except ReproError as exc:
                attempts += 1
                if isinstance(exc, WorkerCrashError):
                    report.crashes += 1
                else:
                    report.errors += 1
                if attempts > policy.max_retries:
                    detail = _quarantine_detail(unit, exc, attempts)
                    report.quarantined.append(detail)
                    results[unit.index] = ("quarantined", detail)
                    if record is not None:
                        record(unit, "quarantined", detail)
                    break
                report.retries += 1
                delay = min(policy.backoff_cap,
                            policy.backoff_base
                            * (2 ** max(0, attempts - 1)))
                time.sleep(delay * (0.5 + rng.random()))
            else:
                results[unit.index] = ("ok", value)
                if record is not None:
                    record(unit, "ok", value)
                break
    if fault_plan is not None:
        report.faults_injected = fault_plan.injected
    report.seconds = round(time.monotonic() - started, 6)
    return results, report
