"""Supervised, fault-tolerant work-queue execution (``repro.exec``).

The shared execution layer under ``repro dse`` / :meth:`Session.sweep`
and :func:`repro.api.run_many`:

* :mod:`~repro.exec.supervisor` — the work-queue
  :class:`~repro.exec.supervisor.Supervisor` (per-chunk futures,
  wall-clock timeouts, retry with exponential backoff + jitter,
  chunk re-splitting to isolate poison configs, solo verdict runs,
  ``BrokenProcessPool`` recovery) and its serial twin
  :func:`~repro.exec.supervisor.run_serial`.
* :mod:`~repro.exec.journal` — append-only JSONL checkpoint journals
  behind ``--checkpoint``/``--resume``.
* :mod:`~repro.exec.faults` — the deterministic fault-injection
  harness (``REPRO_FAULTS``) that makes every resilience path
  testable in CI.
"""

from .faults import (
    CRASH_EXIT_CODE,
    DEFAULT_HANG_SECONDS,
    ENV_VAR,
    KINDS,
    FaultPlan,
    FaultRule,
    apply_fault,
    parse_faults,
    resolve_plan,
)
from .journal import CheckpointJournal, close_active_journals, read_journal
from .supervisor import (
    ExecPolicy,
    SupervisionReport,
    Supervisor,
    Unit,
    chunk_contiguous,
    run_serial,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_HANG_SECONDS",
    "ENV_VAR",
    "KINDS",
    "CheckpointJournal",
    "ExecPolicy",
    "FaultPlan",
    "FaultRule",
    "SupervisionReport",
    "Supervisor",
    "Unit",
    "apply_fault",
    "chunk_contiguous",
    "close_active_journals",
    "parse_faults",
    "read_journal",
    "resolve_plan",
    "run_serial",
]
