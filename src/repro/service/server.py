"""Simulation-as-a-service: the asyncio HTTP/JSON front end.

A single long-running process multiplexes many concurrent clients over
shared warm :class:`~repro.api.Session` baselines (``repro serve``).
Pure stdlib: a hand-rolled HTTP/1.1 server over ``asyncio`` streams —
no framework, no sockets-level dependency.

Endpoints (wire schema: :mod:`repro.service.wire`):

* ``POST /v1/run`` — one simulation (registry name or inline DSL spec;
  OmniSim requests are served from the pooled warm baseline, depth
  overrides by constraint-checked incremental replay with full-run
  fallback);
* ``POST /v1/sweep`` — resimulate-many (explicit ``configs``) or
  depth-space exploration (``space`` axes, with the Pareto frontier);
* ``POST /v1/classify`` / ``POST /v1/report`` — analysis endpoints;
* ``GET /healthz`` — liveness;
* ``GET /v1/meta`` — schema version, pool/capture/request statistics.

Concurrency model: the event loop only parses and routes; every
CPU-bound step (compile, capture, replay, sweep) is dispatched to a
``--workers``-sized thread pool so the loop stays responsive.  Requests
resolving to the same content-addressed design digest share one pooled
session, and a :class:`~repro.service.pool.SingleFlight` coalescer
guarantees exactly one compile+capture per (digest, params, executor)
under any level of concurrent first-touch traffic.

Limits and failure mapping: request bodies beyond ``max_body`` and
sweeps beyond ``max_configs`` are refused (HTTP 413), concurrency past
``max_inflight`` and requests during drain get 429, per-request
deadlines expire as 504, and every library exception maps through
``errors.STATUS_TABLE`` to a deterministic status with a structured
JSON body — never a raw traceback on the wire.  SIGTERM/SIGINT drain
gracefully: stop accepting, finish in-flight work, exit 0.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import signal
import sys
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from ..errors import (
    DeadlineError,
    DeadlockError,
    ReproError,
    RequestTooLargeError,
    ServerBusyError,
    WireError,
    exit_code_for,
    http_status_for,
)
from . import wire
from .pool import SessionPool, SingleFlight, canonical_spec, design_digest

_PROTOCOL = "HTTP/1.1"


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` is configured by."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: worker threads for CPU-bound evaluation (the event loop itself
    #: never simulates)
    workers: int = 4
    #: request body byte limit (HTTP 413 beyond it)
    max_body: int = 2 * 1024 * 1024
    #: most configurations one sweep request may name (413 beyond it)
    max_configs: int = 4096
    #: default + maximum per-request wall-clock deadline in seconds
    #: (requests may ask for less, never more); None = unlimited
    deadline: float | None = 120.0
    #: concurrent in-flight POST limit (429 beyond it)
    max_inflight: int = 64
    #: warm sessions kept alive (LRU eviction beyond it)
    max_sessions: int = 32
    #: default Func Sim executor for pooled sessions
    executor: str | None = None
    #: trace-cache setting passed through to ``Session.open`` (None =
    #: consult REPRO_TRACE_CACHE; a directory path enables it there)
    trace_cache: object = None


class _HttpError(Exception):
    """Protocol-level failure (bad request line, unsupported method…);
    carries its own status because no library exception matches."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class ReproService:
    """One server instance: sockets, session pool, coalescer, stats."""

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config or ServiceConfig()
        self.pool = SessionPool(max_sessions=self.config.max_sessions)
        self._flight = SingleFlight()
        self._threads = ThreadPoolExecutor(
            max_workers=max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        #: how baselines were acquired, cumulative (exactly-one-cold
        #: per digest is the coalescing acceptance criterion)
        self.captures = {"cold": 0, "warm": 0, "hot": 0, "coalesced": 0}
        self.request_counts: dict = {}
        self.error_counts: dict = {}
        self._inflight = 0
        self._draining = False
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._done = asyncio.Event()
        self._server = None
        self._started = time.time()
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client_connected, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Begin graceful drain: stop accepting, reject new POSTs with
        429, let in-flight work finish, then wake :meth:`wait_done`."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
        if self._inflight == 0:
            self._done.set()

    async def wait_done(self) -> None:
        """Block until a requested shutdown has fully drained."""
        await self._done.wait()
        await self._flight.drain()
        # Idle keep-alive clients would otherwise pin their handler
        # tasks until loop teardown cancels them noisily: close the
        # transports (their pending readline sees EOF) and let every
        # handler finish on its own.
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()

    async def aclose(self) -> None:
        """Drain and release everything (used by tests/bench)."""
        self.request_shutdown()
        await self.wait_done()
        self._threads.shutdown(wait=False)
        self.pool.clear()

    # -- HTTP plumbing --------------------------------------------------

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._respond(writer, exc.status,
                                        self._plain_error(exc.status,
                                                          str(exc)),
                                        close=True)
                    break
                except (RequestTooLargeError, WireError) as exc:
                    await self._respond(writer, http_status_for(exc),
                                        self._error_doc(exc), close=True)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, doc = await self._dispatch(method, path, body)
                close = (headers.get("connection", "").lower() == "close"
                         or self._draining)
                await self._respond(writer, status, doc, close=close)
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        """One HTTP/1.1 request head + body; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = (
                line.decode("latin-1").strip().split(" ", 2))
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: dict = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 64:
                raise _HttpError(431, "too many headers")
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        if method.upper() == "POST":
            if "content-length" not in headers:
                raise _HttpError(411, "POST requires Content-Length")
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad Content-Length") from None
            if length > self.config.max_body:
                raise RequestTooLargeError(
                    f"request body of {length} bytes exceeds the "
                    f"server's max_body limit of "
                    f"{self.config.max_body} bytes"
                )
            body = await reader.readexactly(length)
        return method.upper(), target, headers, body

    async def _respond(self, writer, status: int, doc: dict, *,
                       close: bool) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 409: "Conflict",
                  411: "Length Required", 413: "Payload Too Large",
                  422: "Unprocessable Entity", 429: "Too Many Requests",
                  431: "Request Header Fields Too Large",
                  500: "Internal Server Error",
                  504: "Gateway Timeout"}.get(status, "Unknown")
        head = (
            f"{_PROTOCOL} {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()

    # -- routing --------------------------------------------------------

    async def _dispatch(self, method, path, body):
        self.request_counts[path] = self.request_counts.get(path, 0) + 1
        if path == "/healthz":
            if method != "GET":
                return 405, self._plain_error(405, "healthz is GET-only")
            return 200, {"status": "draining" if self._draining
                         else "ok",
                         "schema_version": wire.SCHEMA_VERSION}
        if path == "/v1/meta":
            if method != "GET":
                return 405, self._plain_error(405, "meta is GET-only")
            return 200, self._meta_doc()
        req_cls = wire.REQUEST_TYPES.get(path)
        if req_cls is None:
            return 404, self._plain_error(
                404, f"unknown endpoint {path!r} (have: "
                     f"{', '.join(sorted(wire.REQUEST_TYPES))}, "
                     f"/healthz, /v1/meta)")
        if method != "POST":
            return 405, self._plain_error(
                405, f"{path} is POST-only, got {method}")
        try:
            if self._draining:
                raise ServerBusyError(
                    "server is draining for shutdown; retry against a "
                    "fresh instance")
            if self._inflight >= self.config.max_inflight:
                raise ServerBusyError(
                    f"server is at its concurrent request limit "
                    f"({self.config.max_inflight}); retry later")
            req = wire.parse_request(req_cls, body)
            handler = {
                "/v1/run": self._handle_run,
                "/v1/sweep": self._handle_sweep,
                "/v1/classify": self._handle_classify,
                "/v1/report": self._handle_report,
            }[path]
            deadline = self._effective_deadline(req)
            self._inflight += 1
            try:
                if deadline is None:
                    doc = await handler(req)
                else:
                    try:
                        doc = await asyncio.wait_for(handler(req),
                                                     deadline)
                    except asyncio.TimeoutError:
                        raise DeadlineError(
                            f"request exceeded its {deadline:.3f}s "
                            f"deadline (the evaluation continues "
                            f"server-side and may be warm on retry)"
                        ) from None
            finally:
                self._inflight -= 1
                if self._draining and self._inflight == 0:
                    self._done.set()
            return 200, doc
        except Exception as exc:  # noqa: BLE001 - mapped, never raw
            return self._map_error(exc)

    def _effective_deadline(self, req) -> float | None:
        limit = self.config.deadline
        asked = getattr(req, "deadline", None)
        if asked is None:
            return limit
        if limit is None:
            return float(asked)
        return min(float(asked), limit)

    def _map_error(self, exc):
        status = http_status_for(exc)
        if not isinstance(exc, ReproError):
            # Unexpected bug: log the traceback server-side, ship only
            # the structured summary.
            traceback.print_exc(file=sys.stderr)
        name = type(exc).__name__
        self.error_counts[name] = self.error_counts.get(name, 0) + 1
        return status, wire.to_json(wire.ErrorResponse(
            error=str(exc) or name, type=name, status=status,
            exit_code=exit_code_for(exc),
        ))

    def _error_doc(self, exc) -> dict:
        _status, doc = self._map_error(exc)
        return doc

    def _plain_error(self, status: int, message: str) -> dict:
        return wire.to_json(wire.ErrorResponse(
            error=message, type="ProtocolError", status=status,
            exit_code=1))

    def _meta_doc(self) -> dict:
        from .. import __version__

        return {
            "schema_version": wire.SCHEMA_VERSION,
            "version": __version__,
            "uptime_seconds": round(time.time() - self._started, 3),
            "draining": self._draining,
            "inflight": self._inflight,
            "workers": self.config.workers,
            "limits": {
                "max_body": self.config.max_body,
                "max_configs": self.config.max_configs,
                "deadline": self.config.deadline,
                "max_inflight": self.config.max_inflight,
                "max_sessions": self.config.max_sessions,
            },
            "sessions": dict(self.pool.stats, active=len(self.pool)),
            "captures": dict(self.captures),
            "requests": dict(self.request_counts),
            "errors": dict(self.error_counts),
        }

    # -- session + baseline acquisition --------------------------------

    async def _in_worker(self, fn, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._threads, functools.partial(fn, *args, **kwargs))

    def _design_identity(self, req):
        """(kind, ident) for the digest: registry name or canonical
        inline spec text."""
        if req.design is not None:
            from ..designs.dsl import looks_like_spec_path

            if looks_like_spec_path(req.design):
                raise WireError(
                    "design must be a registry name or group alias; "
                    "POST the spec itself in the 'spec' field instead "
                    "of a server-side file path")
            return "registry", req.design
        return "inline", canonical_spec(req.spec)

    def _make_session(self, kind: str, ident: str, params: dict):
        """Build the Session (worker thread: inline specs compile
        eagerly)."""
        from ..api import Session

        if kind == "registry":
            return Session.open(ident, executor=self.config.executor,
                                trace_cache=self.config.trace_cache,
                                **params)
        from ..designs import dsl

        spec = dsl.parse_spec(ident, origin="<inline>")
        entry = dsl.to_design_spec(spec)
        return Session.open(entry, executor=self.config.executor,
                            trace_cache=False, **params)

    async def _session_for(self, req):
        """The pooled (or freshly created, single-flight) session for a
        request, plus its content digest."""
        kind, ident = self._design_identity(req)
        digest = design_digest(kind, ident, req.params)
        session = self.pool.get(digest)
        if session is not None:
            return session, digest

        async def _create():
            # Re-checked under the flight: a caller that missed the
            # pool *and* arrived after the previous flight completed
            # must not build a duplicate session.
            pooled = self.pool.get(digest)
            if pooled is not None:
                return pooled
            created = await self._in_worker(
                self._make_session, kind, ident, dict(req.params))
            self.pool.put(digest, created)
            return created

        session, _owner = await self._flight.do(("session", digest),
                                                _create)
        return session, digest

    async def _baseline_for(self, session, digest, executor):
        """The (possibly coalesced) captured baseline + its label."""
        from ..sim.context import resolve_executor

        key = ("baseline", digest, resolve_executor(
            executor if executor is not None else session.executor))
        if session.has_baseline(executor):
            self.captures["hot"] += 1
            return session.baseline(executor=executor), "hot"

        async def _capture():
            # Same latecomer re-check as in _session_for: the session
            # may have gained its baseline since we looked.
            if session.has_baseline(executor):
                return session.baseline(executor=executor), "hot"
            result = await self._in_worker(
                functools.partial(session.baseline, executor=executor))
            label = result.phase_seconds.get("capture", "cold")
            return result, label if label in ("cold", "warm") else "cold"

        (result, label), owner = await self._flight.do(key, _capture)
        if not owner:
            label = "coalesced"
        self.captures[label] += 1
        return result, label

    # -- endpoint handlers ---------------------------------------------

    async def _handle_run(self, req: wire.RunRequest) -> dict:
        t0 = time.perf_counter()
        session, digest = await self._session_for(req)
        executor = req.executor or self.config.executor
        depths = dict(req.depths)
        capture = None
        if req.engine == "omnisim":
            try:
                base, capture = await self._baseline_for(
                    session, digest, executor)
            except DeadlockError:
                if not depths:
                    raise
                # The declared depths deadlock; the requested override
                # may not — a full run at those depths decides.
                result = await self._in_worker(
                    session.run, engine="omnisim", executor=executor,
                    depths=depths)
                capture, serving = "none", "full"
            else:
                if depths:
                    result, serving = await self._in_worker(
                        _serve_depths, session, executor, depths)
                else:
                    result, serving = base, "baseline"
        else:
            result = await self._in_worker(
                session.run, engine=req.engine, executor=executor,
                depths=depths or None)
            serving = "full"
        return wire.to_json(wire.RunResponse(
            design=session.name,
            digest=digest,
            engine=req.engine,
            executor=executor,
            cycles=result.cycles,
            scalars=dict(result.scalars),
            failure=result.failure,
            warnings=list(result.warnings)[:20],
            capture=capture,
            serving=serving,
            seconds=round(time.perf_counter() - t0, 6),
        ))

    async def _handle_sweep(self, req: wire.SweepRequest) -> dict:
        t0 = time.perf_counter()
        session, digest = await self._session_for(req)
        executor = req.executor or self.config.executor
        if req.configs is not None:
            if len(req.configs) > self.config.max_configs:
                raise RequestTooLargeError(
                    f"sweep names {len(req.configs)} configurations; "
                    f"the server's max_configs limit is "
                    f"{self.config.max_configs}")
            base, capture = await self._baseline_for(session, digest,
                                                     executor)
            run_configs = [
                dict({"depths": dict(c)},
                     **({"executor": executor} if executor else {}))
                for c in req.configs
            ]
            results = await self._in_worker(session.run_many,
                                            run_configs)
            points = [
                wire.to_json(wire.SweepPointWire(
                    depths=dict(config),
                    cycles=result.cycles if not result.failure else None,
                    buffer_bits=None,
                    source=result.phase_seconds.get("serving", "full"),
                    failure=result.failure,
                ))
                for config, result in zip(req.configs, results)
            ]
            return wire.to_json(wire.SweepResponse(
                design=session.name, digest=digest, executor=executor,
                capture=capture, evaluated=len(points), points=points,
                pareto=None, base_depths={}, base_cycles=base.cycles,
                seconds=round(time.perf_counter() - t0, 6),
            ))
        from ..dse import DepthSpace

        space = DepthSpace.parse(req.space)
        # The per-request size gate is an *evaluation* budget, not a
        # space-size one: an adaptive search over a million-config
        # space is admissible as long as max_evals caps what the server
        # will actually pay for.
        adaptive = req.strategy in ("refine", "random")
        effective = space.size
        if req.samples is not None:
            effective = min(effective, req.samples)
        if req.max_evals is not None:
            effective = min(effective, req.max_evals)
        if effective > self.config.max_configs:
            hint = ("bound the search with 'max_evals'" if adaptive
                    else "sample with 'samples'/'max_evals', use an "
                         "adaptive 'strategy', or shrink the space")
            raise RequestTooLargeError(
                f"sweep would evaluate up to {effective} configurations; "
                f"the server's max_configs limit is "
                f"{self.config.max_configs} ({hint})")
        _base, capture = await self._baseline_for(session, digest,
                                                  executor)
        sweep = await self._in_worker(
            functools.partial(session.sweep, space,
                              samples=req.samples, seed=req.seed,
                              executor=executor,
                              strategy=req.strategy,
                              max_evals=req.max_evals))
        def point_doc(p):
            return wire.to_json(wire.SweepPointWire(
                depths=dict(p.depths), cycles=p.cycles,
                buffer_bits=p.buffer_bits, source=p.source,
                failure=p.detail,
            ))
        return wire.to_json(wire.SweepResponse(
            design=session.name, digest=digest, executor=executor,
            capture=capture, evaluated=sweep.evaluated,
            points=[point_doc(p) for p in sweep.points],
            pareto=[point_doc(p) for p in sweep.pareto()],
            search=sweep.search,
            base_depths=dict(sweep.base_depths),
            base_cycles=sweep.base_cycles,
            seconds=round(time.perf_counter() - t0, 6),
        ))

    async def _handle_classify(self, req: wire.ClassifyRequest) -> dict:
        t0 = time.perf_counter()
        session, digest = await self._session_for(req)
        info = await self._in_worker(session.classify)
        return wire.to_json(wire.ClassifyResponse(
            design=session.name, digest=digest,
            design_type=str(info.design_type),
            func_sim_level=info.func_sim_level,
            perf_sim_level=info.perf_sim_level,
            cyclic=bool(info.cyclic),
            has_nonblocking=bool(info.has_nonblocking),
            has_infinite_loop=bool(info.has_infinite_loop),
            reasons=list(info.reasons),
            seconds=round(time.perf_counter() - t0, 6),
        ))

    async def _handle_report(self, req: wire.ReportRequest) -> dict:
        t0 = time.perf_counter()
        session, digest = await self._session_for(req)
        modules = await self._in_worker(session.report)
        return wire.to_json(wire.ReportResponse(
            design=session.name, digest=digest, modules=modules,
            seconds=round(time.perf_counter() - t0, 6),
        ))


def _serve_depths(session, executor, depths):
    """Serve an OmniSim run at depth overrides from the warm baseline:
    incremental replay first, one full re-simulation on divergence
    (worker thread; mirrors ``cli._run_from_trace``)."""
    from ..errors import ConstraintViolation, SimulationError

    base = session.baseline(executor=executor)
    try:
        inc = session.resimulate(depths, executor=executor)
    except ConstraintViolation:
        return (session.run(engine="omnisim", executor=executor,
                            depths=depths), "full")
    except DeadlockError:
        raise  # a true deadlock at the requested depths IS the answer
    except SimulationError:
        # replay went cyclic/invalid: let a real run diagnose it
        return (session.run(engine="omnisim", executor=executor,
                            depths=depths), "full")
    return dataclasses.replace(
        base,
        cycles=inc.cycles,
        module_end_times=dict(inc.module_end_times),
        execute_seconds=inc.seconds,
        frontend_seconds=0.0,
        phase_seconds=dict(base.phase_seconds, serving="incremental"),
    ), "incremental"


# ---------------------------------------------------------------------------
# entry points


def serve(config: ServiceConfig | None = None, echo=print) -> int:
    """Run the service until SIGTERM/SIGINT, then drain and return 0
    (the ``repro serve`` command)."""
    config = config or ServiceConfig()

    async def _main() -> None:
        service = ReproService(config)
        await service.start()
        echo(f"repro-serve listening on http://{config.host}:"
             f"{service.port} (schema v{wire.SCHEMA_VERSION}, "
             f"workers={config.workers})", flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum,
                                        service.request_shutdown)
            except (NotImplementedError, RuntimeError):
                # Platform without loop signal support: the
                # KeyboardInterrupt path in the CLI still drains.
                pass
        await service.wait_done()
        service._threads.shutdown(wait=True)
        echo("repro-serve drained cleanly", flush=True)

    asyncio.run(_main())
    return 0


class ServiceHandle:
    """A running in-process server (own thread + event loop) for tests
    and the benchmark harness."""

    def __init__(self, service: ReproService, thread, loop):
        self.service = service
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        return self.service.port

    @property
    def url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful drain, then join the server thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                self.service.request_shutdown)
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(config: ServiceConfig | None = None,
                    **overrides) -> ServiceHandle:
    """Start a server on a background thread; returns once it accepts
    connections.  ``overrides`` patch :class:`ServiceConfig` fields
    (``port=0`` picks an ephemeral port — the default here)."""
    import threading

    if config is None:
        config = ServiceConfig(port=0)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    holder: dict = {}
    started = threading.Event()

    def _runner() -> None:
        async def _main() -> None:
            service = ReproService(config)
            await service.start()
            holder["service"] = service
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await service.wait_done()
            service._threads.shutdown(wait=True)

        try:
            asyncio.run(_main())
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            holder["error"] = exc
            started.set()

    thread = threading.Thread(target=_runner, name="repro-serve",
                              daemon=True)
    thread.start()
    if not started.wait(30.0):
        raise RuntimeError("service failed to start within 30s")
    if "error" in holder:
        raise RuntimeError(
            f"service failed to start: {holder['error']!r}")
    return ServiceHandle(holder["service"], thread, holder["loop"])
