"""Warm-session pool + capture coalescing for the simulation service.

The economics of the service are "compile once, query many times": a
:class:`~repro.api.Session` holds the compiled design and the captured
baseline, so the pool keys sessions by a **content-addressed design
digest** and keeps the hottest ``max_sessions`` alive (LRU eviction).
Two clients asking for the same design+params land on the *same*
session object — the warm path is a dictionary lookup.

Digests are content-addressed, not name-addressed:

* registry designs hash the builder module's source bytes (via
  :func:`repro.trace.store.design_fingerprint`) plus the params, so
  editing a design invalidates its pool entry key on restart;
* inline specs hash their canonical JSON text plus the params, so the
  same spec posted by two clients coalesces and a one-character edit
  does not.

:class:`SingleFlight` is the coalescer: concurrent first-touch requests
for the same key (session creation, baseline capture) share one
in-flight computation — exactly one compile+capture per
(digest, params, executor) no matter how many clients race.  The
underlying work runs on the server's worker thread pool via a caller
supplied awaitable, and is *shielded* from request cancellation: a
client whose deadline expires mid-capture gets its 504, but the capture
completes and warms the pool for everyone else.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from collections import OrderedDict

from ..errors import WireError


def canonical_spec(spec) -> str:
    """The canonical text of an inline spec (digest input).

    A JSON object is dumped with sorted keys; source text is taken
    verbatim (the digest then distinguishes formatting variants of the
    same spec — harmless: they simply warm separate pool entries)."""
    if isinstance(spec, dict):
        try:
            return json.dumps(spec, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise WireError(f"inline spec is not JSON-serializable: "
                            f"{exc}") from None
    return str(spec)


def design_digest(kind: str, ident: str, params: dict) -> str:
    """Content-address of one (design, params) pair — the pool key.

    ``kind`` is ``"registry"`` or ``"inline"``; ``ident`` is the
    registry name (its builder-source fingerprint is folded in when
    resolvable) or the canonical spec text."""
    h = hashlib.sha256()
    h.update(f"{kind}\0{ident}\0{sorted(params.items())!r}\0"
             .encode("utf-8"))
    if kind == "registry":
        from ..trace.store import design_fingerprint

        fingerprint = design_fingerprint(("registry", ident, params))
        if fingerprint is not None:
            h.update(fingerprint)
    return h.hexdigest()


class SessionPool:
    """LRU-bounded map of design digest -> warm :class:`Session`."""

    def __init__(self, max_sessions: int = 32):
        if max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {max_sessions}")
        self.max_sessions = max_sessions
        self._sessions: OrderedDict = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "created": 0,
                      "evicted": 0}

    def __len__(self) -> int:
        return len(self._sessions)

    def get(self, digest: str):
        """The pooled session for ``digest``, or ``None`` (marks the
        entry most-recently-used on hit)."""
        session = self._sessions.get(digest)
        if session is None:
            self.stats["misses"] += 1
            return None
        self._sessions.move_to_end(digest)
        self.stats["hits"] += 1
        return session

    def put(self, digest: str, session) -> None:
        """Adopt a freshly created session, evicting the
        least-recently-used entries past ``max_sessions``."""
        self._sessions[digest] = session
        self._sessions.move_to_end(digest)
        self.stats["created"] += 1
        while len(self._sessions) > self.max_sessions:
            _digest, victim = self._sessions.popitem(last=False)
            self.stats["evicted"] += 1
            victim.close()

    def clear(self) -> None:
        while self._sessions:
            _digest, victim = self._sessions.popitem(last=False)
            victim.close()


class SingleFlight:
    """Coalesce concurrent computations of the same key.

    ``do(key, work)`` returns ``(value, owner)``: the first caller for
    a key becomes the *owner* and actually runs ``work()`` (as a
    separate task, so a cancelled owner request cannot strand the
    waiters); every concurrent caller awaits the same future.  The
    future is shielded — request-level timeouts cancel the *wait*, not
    the work."""

    def __init__(self):
        self._inflight: dict = {}
        self._tasks: set = set()

    def inflight(self, key) -> bool:
        return key in self._inflight

    async def do(self, key, work):
        fut = self._inflight.get(key)
        if fut is not None:
            return await asyncio.shield(fut), False
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        # Nobody may be left to await the result (every waiter timed
        # out); don't let that surface as "exception never retrieved".
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None)
        self._inflight[key] = fut
        task = loop.create_task(self._fill(key, fut, work))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return await asyncio.shield(fut), True

    async def _fill(self, key, fut, work) -> None:
        try:
            value = await work()
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            if not fut.done():
                fut.set_exception(exc)
        else:
            if not fut.done():
                fut.set_result(value)
        finally:
            self._inflight.pop(key, None)

    async def drain(self) -> None:
        """Wait for every in-flight computation to finish (shutdown)."""
        if self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
