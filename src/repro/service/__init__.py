"""Simulation-as-a-service: async HTTP/JSON server over Session + the
trace store (DESIGN.md section 18).

Pure stdlib.  ``repro serve`` runs :func:`serve`; tests and the bench
harness embed a server with :func:`serve_in_thread`.
"""

from .pool import SessionPool, SingleFlight, design_digest
from .server import (
    ReproService,
    ServiceConfig,
    ServiceHandle,
    serve,
    serve_in_thread,
)
from .wire import SCHEMA_VERSION

__all__ = [
    "SCHEMA_VERSION",
    "ReproService",
    "ServiceConfig",
    "ServiceHandle",
    "SessionPool",
    "SingleFlight",
    "design_digest",
    "serve",
    "serve_in_thread",
]
