"""The service wire schema: versioned request/response dataclasses.

Every document the simulation service reads or writes is one of these
dataclasses, JSON-round-tripped through :func:`to_json` /
``<Class>.from_json``.  The schema is **versioned**: every document
carries a ``schema_version`` field, requests declaring a version this
build does not speak are rejected with a structured 400, and any
incompatible change to a field bumps :data:`SCHEMA_VERSION`.

Validation is strict on *requests* (unknown fields, wrong types and
missing design references all raise :class:`~repro.errors.WireError`,
which the server maps to HTTP 400 via ``errors.STATUS_TABLE``) and
strict-enough on *responses* (``from_json`` is what clients, the bench
client and the round-trip tests use).

A design is referenced in one of two ways, exactly one of which must be
present:

* ``design`` — a registry name or group alias (``"fig4_ex5"``,
  ``"typea_large"``).  Server-side file paths are **rejected**: the
  client has no business naming files on the server's disk.
* ``spec`` — an inline declarative design spec (the PR 3 DSL), either
  as YAML/JSON source text or as a parsed JSON object.

``params`` are builder parameter overrides (``{"n": 256}``), folded
into the design's content digest.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

from ..errors import WireError

#: bump on ANY incompatible change to a request or response field
SCHEMA_VERSION = 1

#: engine names are validated by the engine registry server-side; the
#: wire layer only checks the type.


def to_json(obj) -> dict:
    """A wire dataclass as a plain JSON-serializable dict."""
    return dataclasses.asdict(obj)


def dumps(obj) -> str:
    """A wire dataclass as compact JSON text."""
    return json.dumps(to_json(obj), sort_keys=True)


def _load(cls, doc):
    """Shared ``from_json``: strict key set, then per-class
    ``_validate``."""
    if not isinstance(doc, dict):
        raise WireError(
            f"{cls.__name__}: expected a JSON object, got "
            f"{type(doc).__name__}"
        )
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise WireError(
            f"{cls.__name__}: unknown field(s) {', '.join(unknown)} "
            f"(expected a subset of {', '.join(sorted(allowed))})"
        )
    version = doc.get("schema_version", SCHEMA_VERSION)
    if not isinstance(version, int) or version != SCHEMA_VERSION:
        raise WireError(
            f"{cls.__name__}: unsupported schema_version {version!r} "
            f"(this build speaks version {SCHEMA_VERSION})"
        )
    try:
        obj = cls(**doc)
    except TypeError as exc:
        raise WireError(f"{cls.__name__}: {exc}") from None
    obj._validate()
    return obj


def parse_request(cls, body: bytes | str):
    """Parse an HTTP request body into a request dataclass.

    Malformed JSON and schema violations both surface as
    :class:`~repro.errors.WireError` (HTTP 400)."""
    if isinstance(body, bytes):
        try:
            body = body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"request body is not UTF-8: {exc}") from None
    try:
        doc = json.loads(body) if body.strip() else {}
    except ValueError as exc:
        raise WireError(f"request body is not JSON: {exc}") from None
    return _load(cls, doc)


def _check(cond: bool, message: str) -> None:
    if not cond:
        raise WireError(message)


def _check_params(params) -> None:
    _check(isinstance(params, dict), "params must be an object")
    for key, value in params.items():
        _check(isinstance(key, str), f"params key {key!r} must be a string")
        _check(isinstance(value, (int, float, str, bool)),
               f"params[{key!r}] must be a scalar, got "
               f"{type(value).__name__}")


def _check_depths(depths, label: str = "depths") -> None:
    _check(isinstance(depths, dict), f"{label} must be an object")
    for name, depth in depths.items():
        _check(isinstance(name, str),
               f"{label} key {name!r} must be a FIFO name")
        _check(isinstance(depth, int) and not isinstance(depth, bool)
               and depth >= 1,
               f"{label}[{name!r}] must be an integer depth >= 1, "
               f"got {depth!r}")


class _DesignRequest:
    """Validation shared by every request that names a design."""

    def _validate_design(self) -> None:
        has_design = self.design is not None
        has_spec = self.spec is not None
        _check(has_design != has_spec,
               "exactly one of 'design' (registry name) or 'spec' "
               "(inline spec) is required")
        if has_design:
            _check(isinstance(self.design, str) and self.design.strip(),
                   "design must be a non-empty registry name")
        if has_spec:
            _check(isinstance(self.spec, (str, dict)),
                   "spec must be YAML/JSON source text or a JSON object")
            if isinstance(self.spec, str):
                _check(bool(self.spec.strip()), "spec text is empty")
        _check_params(self.params)
        if self.executor is not None:
            _check(isinstance(self.executor, str),
                   "executor must be a string")
        if self.deadline is not None:
            _check(isinstance(self.deadline, (int, float))
                   and not isinstance(self.deadline, bool)
                   and self.deadline > 0,
                   "deadline must be a positive number of seconds")


@dataclass
class RunRequest(_DesignRequest):
    """``POST /v1/run`` — simulate a design once."""

    design: str | None = None
    spec: str | dict | None = None
    params: dict = field(default_factory=dict)
    engine: str = "omnisim"
    executor: str | None = None
    depths: dict = field(default_factory=dict)
    #: per-request wall-clock budget in seconds (capped by the server's
    #: configured deadline; expiry -> HTTP 504)
    deadline: float | None = None
    schema_version: int = SCHEMA_VERSION

    def _validate(self) -> None:
        self._validate_design()
        _check(isinstance(self.engine, str) and bool(self.engine),
               "engine must be a non-empty string")
        _check_depths(self.depths)

    @classmethod
    def from_json(cls, doc) -> "RunRequest":
        return _load(cls, doc)


@dataclass
class SweepRequest(_DesignRequest):
    """``POST /v1/sweep`` — resimulate-many / depth-space exploration.

    Exactly one of:

    * ``configs`` — explicit depth-override dicts, served in order by
      constraint-checked (vectorized) incremental replay with full-run
      fallback;
    * ``space`` — axis specs (``["fifo2=1:16", "fifo1=2,4,8"]``)
      explored like ``repro dse`` (optionally ``samples``-sampled),
      returning the evaluated points plus the Pareto frontier.

    Space sweeps additionally accept ``strategy``
    (``"exhaustive"``/``"refine"``/``"random"``) and ``max_evals`` —
    the adaptive-search seam, letting a service client explore spaces
    far larger than the server's per-request config cap as long as the
    evaluation *budget* fits it.  Both fields are optional, so
    version-1 clients are unaffected (unknown fields are still
    rejected; absent ones take the defaults).
    """

    design: str | None = None
    spec: str | dict | None = None
    params: dict = field(default_factory=dict)
    executor: str | None = None
    configs: list | None = None
    space: list | None = None
    samples: int | None = None
    seed: int = 0
    strategy: str | None = None
    max_evals: int | None = None
    deadline: float | None = None
    schema_version: int = SCHEMA_VERSION

    def _validate(self) -> None:
        self._validate_design()
        has_configs = self.configs is not None
        has_space = self.space is not None
        _check(has_configs != has_space,
               "exactly one of 'configs' (explicit depth dicts) or "
               "'space' (axis specs) is required")
        if has_configs:
            _check(isinstance(self.configs, list) and self.configs,
                   "configs must be a non-empty array of depth objects")
            for i, config in enumerate(self.configs):
                _check_depths(config, label=f"configs[{i}]")
            _check(self.strategy is None and self.max_evals is None,
                   "strategy/max_evals apply to 'space' sweeps only")
        if has_space:
            _check(isinstance(self.space, list) and self.space
                   and all(isinstance(s, str) for s in self.space),
                   "space must be a non-empty array of axis specs "
                   "like 'fifo=1:16'")
        if self.samples is not None:
            _check(isinstance(self.samples, int)
                   and not isinstance(self.samples, bool)
                   and self.samples >= 1,
                   "samples must be an integer >= 1")
        if self.strategy is not None:
            _check(self.strategy in ("exhaustive", "refine", "random"),
                   "strategy must be one of 'exhaustive', 'refine', "
                   "'random'")
            _check(self.samples is None
                   or self.strategy == "exhaustive",
                   "samples applies to the exhaustive strategy only; "
                   "bound an adaptive search with max_evals")
        if self.max_evals is not None:
            _check(isinstance(self.max_evals, int)
                   and not isinstance(self.max_evals, bool)
                   and self.max_evals >= 1,
                   "max_evals must be an integer >= 1")
        _check(isinstance(self.seed, int)
               and not isinstance(self.seed, bool),
               "seed must be an integer")

    @classmethod
    def from_json(cls, doc) -> "SweepRequest":
        return _load(cls, doc)


@dataclass
class ClassifyRequest(_DesignRequest):
    """``POST /v1/classify`` — Type A/B/C taxonomy analysis."""

    design: str | None = None
    spec: str | dict | None = None
    params: dict = field(default_factory=dict)
    executor: str | None = None
    deadline: float | None = None
    schema_version: int = SCHEMA_VERSION

    def _validate(self) -> None:
        self._validate_design()

    @classmethod
    def from_json(cls, doc) -> "ClassifyRequest":
        return _load(cls, doc)


@dataclass
class ReportRequest(_DesignRequest):
    """``POST /v1/report`` — static C-synthesis report."""

    design: str | None = None
    spec: str | dict | None = None
    params: dict = field(default_factory=dict)
    executor: str | None = None
    deadline: float | None = None
    schema_version: int = SCHEMA_VERSION

    def _validate(self) -> None:
        self._validate_design()

    @classmethod
    def from_json(cls, doc) -> "ReportRequest":
        return _load(cls, doc)


# ---------------------------------------------------------------------------
# responses


class _Response:
    def _validate(self) -> None:  # responses trust the server
        pass

    @classmethod
    def from_json(cls, doc):
        return _load(cls, doc)


@dataclass
class RunResponse(_Response):
    """``/v1/run`` result."""

    design: str = ""
    #: content-address of the design (+ params): the session-pool key
    digest: str = ""
    engine: str = "omnisim"
    executor: str | None = None
    cycles: int | None = None
    scalars: dict = field(default_factory=dict)
    failure: str | None = None
    warnings: list = field(default_factory=list)
    #: how the baseline behind this answer was acquired: "cold" (fresh
    #: capture), "warm" (on-disk trace cache), "hot" (already in this
    #: process), "coalesced" (shared a concurrent request's capture),
    #: or None for non-omnisim engines (no baseline involved)
    capture: str | None = None
    #: how the answer itself was produced: "baseline", "incremental",
    #: or "full"
    serving: str = "baseline"
    #: server-side wall-clock seconds spent on this request
    seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION


@dataclass
class SweepPointWire(_Response):
    """One evaluated configuration inside a :class:`SweepResponse`."""

    depths: dict = field(default_factory=dict)
    cycles: int | None = None
    buffer_bits: int | None = None
    #: evaluation provenance ("incremental", "full", "deadlock",
    #: "quarantined", ... — mirrors ``SweepPoint.source``)
    source: str = ""
    failure: str | None = None


@dataclass
class SweepResponse(_Response):
    """``/v1/sweep`` result."""

    design: str = ""
    digest: str = ""
    executor: str | None = None
    capture: str | None = None
    evaluated: int = 0
    points: list = field(default_factory=list)
    #: Pareto frontier (cycles vs buffer bits) — space sweeps only
    pareto: list | None = None
    #: adaptive-search provenance (strategy, rounds, evals, pruning) —
    #: present when the request asked for a strategy or a budget
    search: dict | None = None
    base_depths: dict = field(default_factory=dict)
    base_cycles: int | None = None
    seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION


@dataclass
class ClassifyResponse(_Response):
    """``/v1/classify`` result."""

    design: str = ""
    digest: str = ""
    design_type: str = ""
    func_sim_level: int = 0
    perf_sim_level: int = 0
    cyclic: bool = False
    has_nonblocking: bool = False
    has_infinite_loop: bool = False
    reasons: list = field(default_factory=list)
    seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION


@dataclass
class ReportResponse(_Response):
    """``/v1/report`` result — one dict per module."""

    design: str = ""
    digest: str = ""
    modules: list = field(default_factory=list)
    seconds: float = 0.0
    schema_version: int = SCHEMA_VERSION


@dataclass
class ErrorResponse(_Response):
    """Any failed request: a structured error document, never a
    traceback.  ``type`` is the library exception class name, ``status``
    and ``exit_code`` come from ``errors.STATUS_TABLE`` — the same table
    the CLI maps exit codes from."""

    error: str = ""
    type: str = "ReproError"
    status: int = 500
    exit_code: int = 1
    schema_version: int = SCHEMA_VERSION


#: request class per POST endpoint (the server's routing table)
REQUEST_TYPES = {
    "/v1/run": RunRequest,
    "/v1/sweep": SweepRequest,
    "/v1/classify": ClassifyRequest,
    "/v1/report": ReportRequest,
}

__all__ = [
    "SCHEMA_VERSION",
    "REQUEST_TYPES",
    "RunRequest",
    "SweepRequest",
    "ClassifyRequest",
    "ReportRequest",
    "RunResponse",
    "SweepPointWire",
    "SweepResponse",
    "ClassifyResponse",
    "ReportResponse",
    "ErrorResponse",
    "to_json",
    "dumps",
    "parse_request",
]
