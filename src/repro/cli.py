"""Command-line interface: ``omnisim <command>`` (or ``python -m repro``).

Commands:

* ``list`` — enumerate the registered benchmark designs;
* ``run <design> [--sim omnisim|cosim|csim|lightningsim|omnisim-threads]
  [--executor compiled|interp] [--depth fifo=N ...]`` — simulate a design
  and print its outputs;
* ``classify <design>`` — Type A/B/C taxonomy analysis;
* ``report <design>`` — static C-synthesis report per module;
* ``gen --type A|B|C [--modules N] [--seed S]`` — emit a procedurally
  generated design spec (YAML), or a whole corpus with ``--batch``;
* ``dse <design> --range fifo=LO:HI [--grid fifo=V1,V2] [--samples N]
  [--jobs J] [--json FILE]`` — depth-space exploration: sweep FIFO depth
  configurations through the incremental path (with full-simulation
  fallback) and report the cycles-vs-buffer-area Pareto frontier;
* ``trace info|verify|gc [--cache-dir DIR]`` — inspect, validate or
  clean the on-disk trace-artifact cache (captured baselines reused
  across processes; see ``--trace-cache`` on ``run``/``dse`` and the
  ``REPRO_TRACE_CACHE`` environment variable);
* ``bench [--smoke] [--out FILE]`` — run the performance benchmark
  matrix and write ``BENCH_perf.json``;
* ``serve [--host H] [--port P] [--workers N]`` — simulation as a
  service: an asyncio HTTP/JSON server multiplexing concurrent clients
  over pooled warm Session baselines (see ``repro.service`` and
  DESIGN.md section 18).

Wherever a ``<design>`` argument is accepted it may be a registry name
(``repro list``), a benchmark-group alias (``typea_large``), or a path
to a declarative spec file (``examples/fig4_ex1.yaml``, see
``repro.designs.dsl``); ``dse`` additionally accepts a directory of
specs and sweeps each in turn.

Exit codes for ``run``: 0 success, 2 deadlock, 3 unsupported design,
4 simulated failure (e.g. the C-sim baseline's SIGSEGV).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import bench as bench_module
from . import designs
from .analysis import render_table
from .api import Session
from .errors import (
    EXIT_DIVERGENCE,
    EXIT_INTERRUPTED,
    EXIT_SIM_FAILURE,
    DeadlockError,
    ReproError,
    UnsupportedDesignError,
    exit_code_for,
)
from .sim import EXECUTORS, engine_names, get_engine


def _cli_engines() -> list[str]:
    """``--sim`` choices: every registered engine exposed to the CLI."""
    return engine_names(cli_only=True)


def __getattr__(name: str):
    # Back-compat shim: ``cli.SIMULATORS`` was the pre-registry engine
    # table; derive it from the registry so old importers keep working.
    if name == "SIMULATORS":
        return {n: get_engine(n).cls for n in _cli_engines()}
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _parse_depths(pairs) -> dict:
    depths = {}
    for pair in pairs or []:
        name, _sep, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"--depth expects FIFO=N, got {pair!r}")
        try:
            depth = int(value)
        except ValueError:
            raise SystemExit(
                f"--depth expects an integer depth, got {pair!r}"
            ) from None
        if depth < 1:
            raise SystemExit(
                f"--depth {name}: depth must be >= 1, got {depth}"
            )
        depths[name] = depth
    return depths


def cmd_list(_args) -> int:
    rows = [
        (spec.name, spec.design_type, spec.blocking,
         "cyclic" if spec.cyclic else "acyclic", spec.description)
        for spec in designs.all_specs()
    ]
    print(render_table(
        ["design", "type", "access", "graph", "description"], rows
    ))
    return 0


def _run_from_trace(session, args, depths):
    """Serve an omnisim run from the session's (possibly warm-cached)
    baseline: directly at base depths, via constraint-checked
    incremental replay for depth overrides.  Returns ``None`` when the
    replay is invalid there (a full run decides what really happens)."""
    import dataclasses

    from .errors import ConstraintViolation, SimulationError

    try:
        base = session.baseline(executor=args.executor)
    except DeadlockError:
        if depths:
            # The *declared* depths deadlock; the requested override may
            # not — the full run at those depths decides (run_many
            # guards this identically).
            return None
        raise
    if not depths:
        return base
    try:
        inc = session.resimulate(depths, executor=args.executor)
    except ConstraintViolation:
        return None
    except DeadlockError:
        raise
    except SimulationError:
        return None  # replay went cyclic: let a real run diagnose it
    return dataclasses.replace(
        base,
        cycles=inc.cycles,
        module_end_times=dict(inc.module_end_times),
        execute_seconds=inc.seconds,
        frontend_seconds=0.0,
        phase_seconds=dict(base.phase_seconds, serving="incremental"),
    )


def cmd_run(args) -> int:
    # All resolve/compile/validate wiring lives in the Session + engine
    # registry: unknown FIFO names raise a clean UnknownFifoError (exit
    # 1 via the ReproError handler in main), and depths passed to an
    # engine that cannot honour them (csim) surface as a result warning.
    session = Session.open(args.design, trace_cache=args.trace_cache)
    depths = _parse_depths(args.depth)
    try:
        result = None
        if session.trace_store is not None and args.sim == "omnisim":
            # Repeat runs skip recapture: the baseline loads from the
            # content-addressed cache and depth overrides replay
            # incrementally (full-run fallback on divergence).
            result = _run_from_trace(session, args, depths)
        if result is None:
            result = session.run(engine=args.sim, executor=args.executor,
                                 depths=depths)
    except DeadlockError as exc:
        print(f"DEADLOCK DETECTED: {exc}")
        return exit_code_for(exc)
    except UnsupportedDesignError as exc:
        print(f"UNSUPPORTED: {exc}")
        return exit_code_for(exc)
    print(f"design     : {result.design_name}")
    print(f"simulator  : {result.simulator}")
    capture = result.phase_seconds.get("capture")
    if capture is not None:
        serving = result.phase_seconds.get("serving", "baseline")
        print(f"trace      : {capture}-capture baseline ({serving})")
    if result.failure:
        print(f"failure    : {result.failure}")
    # Always printed: 0 is a legitimate cycle count (e.g. csim reports
    # no timing), and hiding it made failures look like truncated output.
    print(f"cycles     : {result.cycles}")
    for name, value in sorted(result.scalars.items()):
        print(f"output     : {name} = {value}")
    for warning in result.warnings[:10]:
        print(f"warning    : {warning}")
    if len(result.warnings) > 10:
        print(f"           ... and {len(result.warnings) - 10} more")
    print(f"events     : {result.stats.events}"
          f"  (queries: {result.stats.queries})")
    print(f"frontend   : {result.frontend_seconds:.3f} s")
    print(f"execution  : {result.execute_seconds:.3f} s")
    return EXIT_SIM_FAILURE if result.failure else 0


def cmd_bench(args) -> int:
    return bench_module.main(smoke=args.smoke, out=args.out)


def cmd_dse(args) -> int:
    from .dse import DepthSpace, explore, explore_specs

    specs = list(args.ranges or []) + list(args.grids or [])
    if not specs:
        raise SystemExit(
            "dse needs at least one --range FIFO=LO:HI[:STEP] or "
            "--grid FIFO=V1,V2,..."
        )
    if args.resume and not args.checkpoint:
        raise SystemExit("dse --resume requires --checkpoint FILE")
    space = DepthSpace.parse(specs)
    if (args.samples is not None
            and args.strategy in ("refine", "random")):
        raise SystemExit("dse --samples applies to the exhaustive "
                         "strategy; bound an adaptive search with "
                         "--max-evals instead")
    kwargs = dict(samples=args.samples, seed=args.seed, jobs=args.jobs,
                  executor=args.executor, trace_cache=args.trace_cache,
                  timeout=args.timeout, max_retries=args.max_retries,
                  vectorize=not args.no_vectorize,
                  batch_size=args.batch_size, strategy=args.strategy,
                  max_evals=args.max_evals)
    # Directory-sweep mode only when the argument cannot mean a registry
    # design — a stray local directory must not shadow a design name.
    known_name = (args.design in designs.ALIASES
                  or args.design in designs.names())
    if os.path.isdir(args.design) and not known_name:
        if args.checkpoint:
            # One journal is keyed to one sweep's identity; a directory
            # sweep is many sweeps.
            raise SystemExit("dse --checkpoint applies to a single "
                             "design sweep, not a spec directory")
        return _dse_directory(args, space, explore_specs, kwargs)
    sweep = explore(args.design, space, checkpoint=args.checkpoint,
                    resume=args.resume, **kwargs)

    print(f"design     : {sweep.design}")
    print(f"space      : {', '.join(space.fifos)}"
          f"  ({sweep.space_size} configurations)")
    print(f"evaluated  : {sweep.evaluated}"
          f"  (jobs: {sweep.jobs})")
    print(f"incremental: {sweep.incremental_count}"
          f"  ({100 * sweep.incremental_fraction:.1f}%)")
    modes = sweep.mode_counts
    if modes:
        print("modes      : " + ", ".join(
            f"{mode}={count}" for mode, count in sorted(modes.items())))
    search = sweep.search
    if search:
        budget = search["evals"]["budget"]
        parts = [
            f"strategy={search['strategy']}",
            f"rounds={len(search['rounds'])}",
            f"evals={search['evals']['spent']}"
            + (f"/{budget}" if budget is not None else ""),
        ]
        pruned = (search.get("pruned_regions", 0)
                  + search.get("deadlock_pruned_regions", 0))
        if pruned:
            skipped = (search.get("pruned_configs", 0)
                       + search.get("deadlock_pruned_configs", 0))
            parts.append(f"pruned={pruned} regions ({skipped} configs)")
        parts.append("converged=" + ("yes" if search["converged"]
                                     else f"no ({search['stopped']})"))
        print("search     : " + ", ".join(parts))
    print(f"full resim : {sweep.full_count}")
    if sweep.deadlock_count:
        print(f"deadlocked : {sweep.deadlock_count}")
    if sweep.quarantined_count:
        print(f"quarantined: {sweep.quarantined_count}")
    sup = sweep.supervision or {}
    if sup.get("resumed"):
        print(f"resumed    : {sup['resumed']} configs from "
              f"{sup['checkpoint']}")
    if sup.get("retries") or sup.get("respawns"):
        print(f"supervision: {sup['retries']} retries, "
              f"{sup['respawns']} pool respawns, "
              f"{sup['timeouts']} timeouts, {sup['crashes']} crashes")
    print(f"base       : cycles={sweep.base_cycles} depths="
          + ",".join(f"{k}={v}" for k, v in sorted(
              sweep.base_depths.items())))
    print(f"throughput : {sweep.configs_per_sec:,.1f} configs/s"
          f"  ({sweep.seconds:.3f} s sweep"
          f" + {sweep.capture_seconds:.3f} s {sweep.capture} capture)")

    pareto = sweep.pareto()
    rows = [
        (",".join(f"{f}={p.depths[f]}" for f in space.fifos),
         p.cycles, p.buffer_bits, p.source)
        for p in pareto
    ]
    print()
    print(render_table(
        ["depths", "cycles", "buffer bits", "via"], rows,
        title="Pareto frontier (cycles vs FIFO buffer bits)",
    ))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(sweep.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json_out}")
    return 0


def _dse_directory(args, space, explore_specs, kwargs) -> int:
    """Sweep every spec file in a directory; one summary row per spec."""
    outcomes = explore_specs(args.design, space, **kwargs)
    if not outcomes:
        raise SystemExit(f"no spec files (*.yaml, *.json) in {args.design}")
    rows = []
    reports = []
    for path, outcome in outcomes:
        name = os.path.basename(path)
        if isinstance(outcome, Exception):
            rows.append((name, "-", "-", "-", f"skipped: {outcome}"))
            continue
        best = outcome.best()
        rows.append((
            name, outcome.evaluated, len(outcome.pareto()),
            best.cycles if best else "-",
            f"{100 * outcome.incremental_fraction:.0f}% incremental",
        ))
        reports.append((path, outcome))
    print(render_table(
        ["spec", "evaluated", "pareto", "best cycles", "notes"], rows,
        title=f"DSE over {len(outcomes)} specs in {args.design}",
    ))
    if args.json_out:
        doc = {path: sweep.to_json() for path, sweep in reports}
        with open(args.json_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json_out}")
    return 0


def cmd_gen(args) -> int:
    from .designs import dsl

    if args.batch is not None and args.batch < 1:
        raise SystemExit(f"gen --batch must be >= 1, got {args.batch}")
    if args.batch is not None and args.out_dir is None:
        raise SystemExit("gen --batch requires --out-dir DIR")
    if args.batch is None and args.out_dir is not None:
        raise SystemExit("gen --out-dir requires --batch K "
                         "(use --out FILE for a single spec)")
    if args.batch is not None and args.out is not None:
        raise SystemExit("gen --batch writes into --out-dir; "
                         "--out only applies to a single spec")
    if args.batch is None:
        spec = dsl.generate(args.type, modules=args.modules,
                            seed=args.seed, count=args.count)
        text = dsl.spec_to_yaml(spec)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.out} ({spec.name})")
        else:
            print(text, end="")
        return 0
    if (os.path.isdir(args.out_dir) and os.listdir(args.out_dir)
            and not args.force):
        # Silently interleaving a new batch with an old one corrupts
        # corpus provenance (a dsse/fuzz run would sweep both).
        raise SystemExit(
            f"gen --batch: output dir {args.out_dir!r} is not empty; "
            f"pass --force to overwrite it or choose a fresh directory")
    if args.force and os.path.isdir(args.out_dir):
        for name in os.listdir(args.out_dir):
            if name.endswith((".yaml", ".json")):
                os.unlink(os.path.join(args.out_dir, name))
    os.makedirs(args.out_dir, exist_ok=True)
    for i in range(args.batch):
        spec = dsl.generate(args.type, modules=args.modules,
                            seed=args.seed + i, count=args.count)
        path = os.path.join(args.out_dir, f"{spec.name}.yaml")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(dsl.spec_to_yaml(spec))
        print(f"wrote {path}")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import CampaignConfig, run_campaign, run_differential

    if args.replay:
        from .designs import dsl

        spec = dsl.load_spec(args.replay)
        report = run_differential(spec, max_cycles=args.max_cycles)
        if report.divergence is None:
            print(f"replay {args.replay}: all legs agree "
                  f"({report.configs_checked} retiming configs checked)")
            return 0
        div = report.divergence
        print(f"replay {args.replay}: DIVERGENCE ({div.kind}): "
              f"{div.detail}")
        for leg, outcome in sorted(div.legs.items()):
            print(f"  {leg}: {outcome}")
        return EXIT_DIVERGENCE

    config = CampaignConfig(
        seed=args.seed, budget=args.budget, minutes=args.minutes,
        corpus_dir=args.corpus, pin_dir=args.pin_dir,
        checkpoint=args.checkpoint, resume=args.resume,
        max_cycles=args.max_cycles,
    )
    report = run_campaign(config, log=print)
    print(f"\nevaluated {report.evaluated} candidates "
          f"({report.resumed} resumed) in {report.seconds:.1f}s; "
          f"corpus {report.corpus}, "
          f"{report.coverage_edges} coverage arcs, "
          f"{report.quarantined} quarantined")
    if not report.findings:
        print("no divergence found")
        return 0
    for finding in report.findings:
        print(f"finding: {finding.kind} -> {finding.spec_path}")
        print(f"  {finding.detail}")
        print(f"  replay: python -m repro fuzz --replay "
              f"{finding.spec_path}")
    return EXIT_DIVERGENCE


def _trace_store_for(args):
    """The store a ``repro trace`` management command operates on:
    ``--cache-dir`` wins, else ``REPRO_TRACE_CACHE``, else the default
    directory (management commands never silently no-op)."""
    from .trace.store import resolve_store

    return resolve_store(args.cache_dir, fallback=True)


def cmd_trace(args) -> int:
    import time as _time

    from .trace.store import read_header_file

    store = _trace_store_for(args)
    if store is None:
        raise SystemExit("trace cache is disabled "
                         "(REPRO_TRACE_CACHE is off)")
    entries = store.entries()
    if args.trace_command == "info":
        if not entries:
            print(f"trace cache {store.root}: empty")
            return 0
        rows = []
        for entry in entries:
            design, executor, nodes = "?", "?", "?"
            try:
                meta = read_header_file(entry.path)["meta"]
                design = meta["design_name"]
                executor = meta["executor"]
                nodes = len(meta["module_names"])
            except Exception as exc:  # noqa: BLE001 - info must not crash
                design = f"<unreadable: {type(exc).__name__}>"
            age_h = (_time.time() - entry.mtime) / 3600.0
            rows.append((entry.digest[:12], design, executor, nodes,
                         f"{entry.size / 1024:.1f} KiB",
                         f"{age_h:.1f} h"))
        total = sum(e.size for e in entries)
        print(render_table(
            ["digest", "design", "executor", "modules", "size", "age"],
            rows, title=f"trace cache {store.root}",
        ))
        print(f"\n{len(entries)} artifact(s), {total / 1024:.1f} KiB total")
        return 0
    if args.trace_command == "verify":
        ok, corrupt = store.verify(prune=args.prune)
        for entry, design in ok:
            print(f"ok      : {entry.digest[:12]}  {design}")
        for entry, detail in corrupt:
            verb = "pruned" if args.prune else "corrupt"
            print(f"{verb:8}: {entry.digest[:12]}  {detail}")
        print(f"verified {len(ok) + len(corrupt)} artifact(s): "
              f"{len(ok)} ok, {len(corrupt)} corrupt"
              + (" (removed)" if args.prune and corrupt else ""))
        return 1 if corrupt and not args.prune else 0
    # gc
    max_bytes = (_parse_size(args.max_bytes)
                 if args.max_bytes is not None else None)
    removed, reclaimed = store.gc(older_than_days=args.older_than,
                                  max_bytes=max_bytes)
    scopes = []
    if args.older_than is not None:
        scopes.append(f"entries older than {args.older_than} day(s)")
    if max_bytes is not None:
        scopes.append(f"LRU overflow past {max_bytes} bytes")
    scope = " + ".join(scopes) if scopes else "all entries"
    print(f"trace cache {store.root}: removed {removed} artifact(s) "
          f"({reclaimed / 1024:.1f} KiB), {scope}")
    return 0


def _parse_size(text: str, flag: str = "--max-bytes") -> int:
    """Byte sizes with optional K/M/G suffix (binary units): ``64M``."""
    from .trace.store import parse_size

    try:
        return parse_size(text)
    except ValueError:
        raise SystemExit(
            f"{flag} expects N[K|M|G], got {text!r}"
        ) from None


def cmd_classify(args) -> int:
    session = Session.open(args.design)
    info = session.classify()
    print(f"design          : {session.name}")
    print(f"type            : {info.design_type} "
          f"(registry label: {session.spec.design_type})")
    print(f"func sim level  : L{info.func_sim_level}")
    print(f"perf sim level  : L{info.perf_sim_level}")
    print(f"cyclic          : {info.cyclic}")
    print(f"non-blocking    : {info.has_nonblocking}")
    print(f"infinite loops  : {info.has_infinite_loop}")
    for reason in info.reasons:
        print(f"  - {reason}")
    return 0


def cmd_report(args) -> int:
    session = Session.open(args.design)
    rows = [
        (row["module"], row["blocks"], row["fsm_states"],
         row["static_latency"])
        for row in session.report()
    ]
    print(render_table(
        ["module", "blocks", "fsm states", "static latency"],
        rows, title=f"C-synthesis report for {session.name}",
    ))
    print("\n('?' = latency not statically determinable; "
          "run a simulator for dynamic cycles)")
    return 0


def cmd_serve(args) -> int:
    from .service import ServiceConfig, serve

    if args.workers < 1:
        raise SystemExit(f"serve --workers must be >= 1, "
                         f"got {args.workers}")
    if args.max_inflight < 1:
        raise SystemExit(f"serve --max-inflight must be >= 1, "
                         f"got {args.max_inflight}")
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_body=_parse_size(args.max_body, flag="--max-body"),
        max_configs=args.max_configs,
        deadline=(None if args.deadline == 0 else args.deadline),
        max_inflight=args.max_inflight,
        max_sessions=args.max_sessions,
        executor=args.executor,
        trace_cache=args.trace_cache,
    )
    try:
        return serve(config)
    except KeyboardInterrupt:
        # Platforms without loop signal handlers land here; the drain
        # already ran as far as it could.
        return 0


#: design-argument help shared by every command that takes one
_DESIGN_HELP = ("registry design name (see `repro list`), group alias "
                "(e.g. typea_large), or path to a DSL spec file "
                "(*.yaml / *.json)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="omnisim",
        description="OmniSim reproduction: simulate HLS dataflow designs",
        epilog="Run `omnisim <command> --help` for a worked example of "
               "each command.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    fmt = argparse.RawDescriptionHelpFormatter

    sub.add_parser(
        "list", help="list registered designs", formatter_class=fmt,
        epilog="example:\n"
               "  omnisim list        # one row per design: name, type "
               "A/B/C, access mix, graph shape",
    )

    run_parser = sub.add_parser(
        "run", help="simulate a design", formatter_class=fmt,
        epilog="examples:\n"
               "  omnisim run fig4_ex5                      "
               "# OmniSim, compiled executor\n"
               "  omnisim run fig4_ex3 --sim cosim          "
               "# cycle-stepped oracle\n"
               "  omnisim run examples/fig4_ex1.yaml        "
               "# declarative spec file\n"
               "  omnisim run fig4_ex1 --depth fifo=8       "
               "# override one FIFO depth\n\n"
               "exit codes: 0 ok, 2 deadlock, 3 unsupported design, "
               "4 simulated failure",
    )
    run_parser.add_argument("design", help=_DESIGN_HELP)
    run_parser.add_argument("--sim", choices=_cli_engines(),
                            default="omnisim",
                            help="simulation engine (default: omnisim)")
    run_parser.add_argument("--executor", choices=sorted(EXECUTORS),
                            default=None,
                            help="Func Sim executor (default: compiled)")
    run_parser.add_argument("--depth", action="append", metavar="FIFO=N",
                            help="override a FIFO depth")
    run_parser.add_argument("--trace-cache", metavar="DIR", default=None,
                            help="enable the on-disk trace cache there: "
                                 "repeat omnisim runs reuse the captured "
                                 "baseline instead of recapturing "
                                 "(REPRO_TRACE_CACHE also enables it)")

    bench_parser = sub.add_parser(
        "bench", help="run the performance benchmarks", formatter_class=fmt,
        epilog="example:\n"
               "  omnisim bench --smoke --out bench_smoke.json   "
               "# small CI-sized run",
    )
    bench_parser.add_argument("--smoke", action="store_true",
                              help="small single-design run (for CI)")
    bench_parser.add_argument("--out", default="BENCH_perf.json",
                              help="output JSON path")

    gen_parser = sub.add_parser(
        "gen", help="generate a design spec (seeded, Type A/B/C/D)",
        formatter_class=fmt,
        epilog="examples:\n"
               "  omnisim gen --type A --modules 6 --seed 3          "
               "# YAML spec on stdout\n"
               "  omnisim gen --type C --out drop.yaml               "
               "# write one spec file\n"
               "  omnisim gen --type B --batch 20 --out-dir corpus/  "
               "# seeds S..S+19\n"
               "  omnisim gen --type D --modules 300 --out huge.yaml "
               "# 'huge' family\n\n"
               "the emitted spec is a pure function of (--type, --modules, "
               "--seed, --count);\nfeed specs back through `omnisim run` / "
               "`omnisim dse`",
    )
    gen_parser.add_argument("--type", required=True,
                            choices=["A", "B", "C", "D",
                                     "a", "b", "c", "d"],
                            help="taxonomy class of the generated design "
                                 "(D = huge: fan stages, rings, NB "
                                 "lanes, AXI masters)")
    gen_parser.add_argument("--modules", type=int, default=4, metavar="N",
                            help="module count (default 4, minimum 2)")
    gen_parser.add_argument("--seed", type=int, default=0,
                            help="generator seed (default 0)")
    gen_parser.add_argument("--count", type=int, default=64, metavar="N",
                            help="elements pushed through the pipeline "
                                 "(default 64)")
    gen_parser.add_argument("--out", metavar="FILE", default=None,
                            help="write the spec here instead of stdout")
    gen_parser.add_argument("--batch", type=int, default=None, metavar="K",
                            help="emit K specs (seeds SEED..SEED+K-1) "
                                 "into --out-dir")
    gen_parser.add_argument("--out-dir", metavar="DIR", default=None,
                            help="output directory for --batch")
    gen_parser.add_argument("--force", action="store_true",
                            help="with --batch: overwrite a non-empty "
                                 "--out-dir (old *.yaml/*.json are "
                                 "removed; without this flag a "
                                 "non-empty directory is refused)")

    dse_parser = sub.add_parser(
        "dse", help="depth-space exploration (FIFO depth sweep)",
        formatter_class=fmt,
        description="Sweep FIFO depth configurations and report the "
                    "cycles-vs-buffer-bits Pareto frontier.\n\n"
                    "Evaluation is incremental-first: each configuration "
                    "retimes the captured simulation\ngraph and re-checks "
                    "the recorded query constraints in microseconds. "
                    "When a depth\nchange flips a constraint (or makes "
                    "the graph cyclic), the recorded execution is\n"
                    "invalid there, so the explorer falls back to one "
                    "full OmniSim re-simulation and\nre-captures that "
                    "run's graph as the new reference for its "
                    "neighbourhood. True\ndeadlocks are recorded as "
                    "points without a cycle count. The report's\n"
                    "`incremental:` / `full resim:` lines show how often "
                    "each path ran.",
        epilog="examples:\n"
               "  omnisim dse fig4_ex5 --range fifo1=1:8 --range "
               "fifo2=1:8\n"
               "  omnisim dse examples/fig4_ex1.yaml --range fifo=2:16\n"
               "  omnisim dse corpus/ --range f0=1:8 --samples 4   "
               "# every spec in the directory\n"
               "  omnisim dse typea_large --range sc=1:64 --samples 16 "
               "--jobs 4 --json sweep.json",
    )
    dse_parser.add_argument(
        "design",
        help=_DESIGN_HELP + ", or a directory of spec files to sweep "
             "one by one",
    )
    dse_parser.add_argument("--range", action="append", dest="ranges",
                            metavar="FIFO=LO:HI[:STEP]",
                            help="sweep a FIFO over an inclusive range")
    dse_parser.add_argument("--grid", action="append", dest="grids",
                            metavar="FIFO=V1,V2,...",
                            help="sweep a FIFO over explicit depths")
    dse_parser.add_argument("--samples", type=int, default=None,
                            metavar="N",
                            help="evaluate N seeded random configurations "
                                 "instead of the full grid")
    dse_parser.add_argument("--seed", type=int, default=0,
                            help="sampling seed (default 0)")
    dse_parser.add_argument("--jobs", type=int, default=1, metavar="J",
                            help="shard configurations over J processes")
    dse_parser.add_argument("--executor", choices=sorted(EXECUTORS),
                            default=None,
                            help="Func Sim executor (default: compiled)")
    dse_parser.add_argument("--json", dest="json_out", metavar="FILE",
                            default=None,
                            help="write the full sweep result as JSON")
    dse_parser.add_argument("--trace-cache", metavar="DIR", default=None,
                            help="enable the on-disk trace cache there: "
                                 "repeat sweeps reuse the captured "
                                 "baseline (warm capture) and pool "
                                 "workers load it by content digest "
                                 "(REPRO_TRACE_CACHE also enables it)")
    dse_parser.add_argument("--checkpoint", metavar="FILE", default=None,
                            help="journal completed configurations to "
                                 "FILE (append-only JSONL) so an "
                                 "interrupted sweep can be resumed")
    dse_parser.add_argument("--resume", action="store_true",
                            help="resume from an existing --checkpoint "
                                 "journal: already-completed "
                                 "configurations are not re-evaluated")
    dse_parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="per-chunk wall-clock deadline; hung "
                                 "workers are killed and their configs "
                                 "retried (default: no limit)")
    dse_parser.add_argument("--max-retries", type=int, default=3,
                            metavar="N",
                            help="failures one configuration may accrue "
                                 "before it is quarantined (default 3)")
    dse_parser.add_argument("--batch-size", type=int, default=None,
                            metavar="B",
                            help="configurations per vectorized "
                                 "batch-retiming sweep (default 256); "
                                 "rows the kernel declines fall back "
                                 "to the scalar path one at a time")
    dse_parser.add_argument("--no-vectorize", action="store_true",
                            help="evaluate every configuration on the "
                                 "scalar incremental path (disable the "
                                 "NumPy batch-retiming kernel)")
    dse_parser.add_argument("--strategy", default=None,
                            choices=("exhaustive", "refine", "random"),
                            help="how to cover the space: exhaustive "
                                 "(default; enumerate or --samples), "
                                 "refine (Pareto-guided successive "
                                 "refinement with dominated-region "
                                 "pruning), random (seeded restarts)")
    dse_parser.add_argument("--max-evals", type=int, default=None,
                            metavar="N",
                            help="evaluate at most N configurations: "
                                 "adaptive strategies stop at the "
                                 "budget; exhaustive degrades to a "
                                 "seeded N-sample")

    trace_parser = sub.add_parser(
        "trace", help="inspect / manage the on-disk trace cache",
        formatter_class=fmt,
        description="Manage the content-addressed trace-artifact cache "
                    "(captured OmniSim baselines, reused across "
                    "processes).\n\nEntries are keyed by a SHA-256 over "
                    "the design source, builder params, Func Sim "
                    "executor and schema version, so editing a design "
                    "or changing a parameter never serves stale data — "
                    "old keys just linger until `trace gc`.  Corrupt "
                    "files are detected by checksum and fall back to "
                    "fresh capture at load time.",
        epilog="examples:\n"
               "  omnisim run fig4_ex5 --trace-cache ~/.cache/repro-trace"
               "   # capture once ...\n"
               "  omnisim run fig4_ex5 --trace-cache ~/.cache/repro-trace"
               "   # ... warm reuse\n"
               "  omnisim trace info\n"
               "  omnisim trace verify --prune\n"
               "  omnisim trace gc --older-than 7",
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    cache_dir_help = ("cache directory (default: REPRO_TRACE_CACHE or "
                      "~/.cache/repro-trace)")
    trace_info = trace_sub.add_parser(
        "info", help="list cached artifacts", formatter_class=fmt)
    trace_info.add_argument("--cache-dir", metavar="DIR", default=None,
                            help=cache_dir_help)
    trace_verify = trace_sub.add_parser(
        "verify", help="checksum-validate every cached artifact",
        formatter_class=fmt)
    trace_verify.add_argument("--cache-dir", metavar="DIR", default=None,
                              help=cache_dir_help)
    trace_verify.add_argument("--prune", action="store_true",
                              help="delete artifacts that fail "
                                   "validation")
    trace_gc = trace_sub.add_parser(
        "gc", help="delete cached artifacts", formatter_class=fmt)
    trace_gc.add_argument("--cache-dir", metavar="DIR", default=None,
                          help=cache_dir_help)
    trace_gc.add_argument("--older-than", type=float, metavar="DAYS",
                          default=None,
                          help="only delete artifacts older than DAYS "
                               "(default: all)")
    trace_gc.add_argument("--max-bytes", metavar="N[K|M|G]", default=None,
                          help="size-bound the cache: evict least-"
                               "recently-used artifacts until the rest "
                               "fit in N bytes")

    fuzz_parser = sub.add_parser(
        "fuzz", help="coverage-guided differential fuzzing of the "
                     "engines",
        formatter_class=fmt,
        description="Mutate generated design specs and run each "
                    "candidate as a three-way differential: OmniSim "
                    "compiled vs interpreted vs the cosim oracle, the "
                    "columnar vs object retiming paths, and vectorized "
                    "batch rows vs scalar answers.  Candidates that "
                    "exercise new engine code arcs join the corpus; "
                    "divergences are auto-minimized and pinned as "
                    "replayable regression specs.",
        epilog="examples:\n"
               "  omnisim fuzz --budget 60 --seed 0\n"
               "  omnisim fuzz --minutes 5 --pin-dir tests/regressions\n"
               "  omnisim fuzz --budget 500 --checkpoint fuzz.ckpt "
               "--resume\n"
               "  omnisim fuzz --replay tests/regressions/"
               "pin_engine_0123456789.yaml\n\n"
               "exit codes: 0 all legs agree, 5 divergence found",
    )
    fuzz_parser.add_argument("--budget", type=int, default=200,
                             metavar="N",
                             help="candidate evaluations to spend "
                                  "(default 200)")
    fuzz_parser.add_argument("--minutes", type=float, default=None,
                             metavar="M",
                             help="wall-clock budget; stops early even "
                                  "if --budget remains")
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="campaign seed (default 0); the same "
                                  "seed replays the same candidates")
    fuzz_parser.add_argument("--corpus", metavar="DIR", default=None,
                             help="extra seed specs (*.yaml/*.json) to "
                                  "fuzz from, e.g. a `gen --batch` dir")
    fuzz_parser.add_argument("--pin-dir", metavar="DIR",
                             default="fuzz_pins",
                             help="where minimized regression specs are "
                                  "pinned (default: fuzz_pins/)")
    fuzz_parser.add_argument("--checkpoint", metavar="FILE", default=None,
                             help="journal candidate verdicts to FILE "
                                  "so an interrupted campaign can be "
                                  "resumed")
    fuzz_parser.add_argument("--resume", action="store_true",
                             help="replay verdicts from --checkpoint "
                                  "instead of re-simulating them")
    fuzz_parser.add_argument("--max-cycles", type=int, default=200_000,
                             metavar="N",
                             help="cosim livelock guard per candidate "
                                  "(default 200000)")
    fuzz_parser.add_argument("--replay", metavar="SPEC", default=None,
                             help="run the differential on one pinned "
                                  "spec and exit (0 agree / 5 diverge)")

    classify_parser = sub.add_parser(
        "classify", help="taxonomy analysis (Type A/B/C)",
        formatter_class=fmt,
        epilog="example:\n"
               "  omnisim classify fig4_ex2   # Type B: NB accesses, "
               "timing-dependent control only",
    )
    classify_parser.add_argument("design", help=_DESIGN_HELP)

    report_parser = sub.add_parser(
        "report", help="static C-synthesis report", formatter_class=fmt,
        epilog="example:\n"
               "  omnisim report fig4_ex5   # per-module FSM states and "
               "static latency ('?' = dynamic)",
    )
    report_parser.add_argument("design", help=_DESIGN_HELP)

    serve_parser = sub.add_parser(
        "serve", help="simulation as a service (async HTTP/JSON "
                      "server)",
        formatter_class=fmt,
        description="Run the asyncio HTTP/JSON simulation service: "
                    "POST /v1/run, /v1/sweep, /v1/classify and "
                    "/v1/report accept a registry design name or an "
                    "inline DSL spec; concurrent requests for the same "
                    "design share one pooled warm baseline (exactly "
                    "one compile+capture per design, params and "
                    "executor).  GET /healthz and /v1/meta report "
                    "liveness and pool statistics.  SIGTERM drains "
                    "gracefully and exits 0.",
        epilog="examples:\n"
               "  omnisim serve --port 8080 --workers 4\n"
               "  curl -s localhost:8080/v1/run -d "
               "'{\"design\": \"fig4_ex5\"}'\n"
               "  curl -s localhost:8080/v1/sweep -d '{\"design\": "
               "\"fig4_ex5\", \"space\": [\"fifo2=1:8\"]}'\n\n"
               "--port 0 picks a free port (printed on the "
               "'listening on' line)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1; "
                                   "this server is unauthenticated — "
                                   "expose it deliberately)")
    serve_parser.add_argument("--port", type=int, default=8080,
                              help="TCP port (default 8080; 0 = pick a "
                                   "free port)")
    serve_parser.add_argument("--workers", type=int, default=4,
                              metavar="N",
                              help="worker threads for CPU-bound "
                                   "evaluation (default 4)")
    serve_parser.add_argument("--max-body", metavar="N[K|M|G]",
                              default="2M",
                              help="request body size limit; larger "
                                   "bodies get HTTP 413 (default 2M)")
    serve_parser.add_argument("--max-configs", type=int, default=4096,
                              metavar="N",
                              help="most configurations one sweep "
                                   "request may evaluate (default "
                                   "4096; beyond it HTTP 413)")
    serve_parser.add_argument("--deadline", type=float, default=120.0,
                              metavar="SECONDS",
                              help="default + maximum per-request "
                                   "wall-clock deadline; expiry is "
                                   "HTTP 504 (default 120; 0 = no "
                                   "limit)")
    serve_parser.add_argument("--max-inflight", type=int, default=64,
                              metavar="N",
                              help="concurrent in-flight request "
                                   "limit; beyond it HTTP 429 "
                                   "(default 64)")
    serve_parser.add_argument("--max-sessions", type=int, default=32,
                              metavar="N",
                              help="warm sessions kept pooled (LRU "
                                   "eviction beyond it; default 32)")
    serve_parser.add_argument("--executor", choices=sorted(EXECUTORS),
                              default=None,
                              help="default Func Sim executor for "
                                   "pooled sessions")
    serve_parser.add_argument("--trace-cache", metavar="DIR",
                              default=None,
                              help="enable the on-disk trace cache "
                                   "there: restarts reload captured "
                                   "baselines warm instead of "
                                   "recapturing (REPRO_TRACE_CACHE "
                                   "also enables it)")

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "classify": cmd_classify,
        "report": cmd_report,
        "gen": cmd_gen,
        "fuzz": cmd_fuzz,
        "dse": cmd_dse,
        "trace": cmd_trace,
        "bench": cmd_bench,
        "serve": cmd_serve,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        # Includes UnknownDesignError: registry lookups report a hint
        # listing every valid name and alias.  The exit code comes from
        # the same errors.STATUS_TABLE the HTTP service maps statuses
        # from (deadlock/unsupported are already handled inside cmd_run
        # with their richer messages).
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    except KeyboardInterrupt:
        # Flush any open checkpoint journal before going down so the
        # interrupted sweep stays resumable, then exit with the
        # conventional SIGINT status.
        from .exec.journal import close_active_journals

        flushed = close_active_journals()
        for path in flushed:
            print(f"interrupted: checkpoint journal flushed to {path}",
                  file=sys.stderr)
        if not flushed:
            print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
