"""Command-line interface: ``omnisim <command>`` (or ``python -m repro``).

Commands:

* ``list`` — enumerate the registered benchmark designs;
* ``run <design> [--sim omnisim|cosim|csim|lightningsim|omnisim-threads]
  [--executor compiled|interp] [--depth fifo=N ...]`` — simulate a design
  and print its outputs;
* ``classify <design>`` — Type A/B/C taxonomy analysis;
* ``report <design>`` — static C-synthesis report per module;
* ``dse <design> --range fifo=LO:HI [--grid fifo=V1,V2] [--samples N]
  [--jobs J] [--json FILE]`` — depth-space exploration: sweep FIFO depth
  configurations through the incremental path (with full-simulation
  fallback) and report the cycles-vs-buffer-area Pareto frontier;
* ``bench [--smoke] [--out FILE]`` — run the performance benchmark
  matrix and write ``BENCH_perf.json``.

Exit codes for ``run``: 0 success, 2 deadlock, 3 unsupported design,
4 simulated failure (e.g. the C-sim baseline's SIGSEGV).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import bench as bench_module
from . import compile_design, designs
from .analysis import classify, render_table
from .errors import DeadlockError, ReproError, UnsupportedDesignError
from .sim import (
    EXECUTORS,
    CoSimulator,
    CSimulator,
    LightningSimulator,
    OmniSimulator,
    ThreadedOmniSimulator,
)

SIMULATORS = {
    "omnisim": OmniSimulator,
    "cosim": CoSimulator,
    "csim": CSimulator,
    "lightningsim": LightningSimulator,
    "omnisim-threads": ThreadedOmniSimulator,
}

#: ``dse`` convenience aliases: benchmark-group names resolve to the
#: group's representative design (mirrors ``bench.BENCH_GROUPS``).
DSE_ALIASES = {
    "typea_large": "vector_add_stream",
    "typebc": "fig4_ex5",
}


def _parse_depths(pairs) -> dict:
    depths = {}
    for pair in pairs or []:
        name, _sep, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(f"--depth expects FIFO=N, got {pair!r}")
        try:
            depth = int(value)
        except ValueError:
            raise SystemExit(
                f"--depth expects an integer depth, got {pair!r}"
            ) from None
        if depth < 1:
            raise SystemExit(
                f"--depth {name}: depth must be >= 1, got {depth}"
            )
        depths[name] = depth
    return depths


def cmd_list(_args) -> int:
    rows = [
        (spec.name, spec.design_type, spec.blocking,
         "cyclic" if spec.cyclic else "acyclic", spec.description)
        for spec in designs.all_specs()
    ]
    print(render_table(
        ["design", "type", "access", "graph", "description"], rows
    ))
    return 0


def cmd_run(args) -> int:
    spec = designs.get(args.design)
    compiled = compile_design(spec.make())
    sim_class = SIMULATORS[args.sim]
    kwargs = {"executor": args.executor}
    if args.sim not in ("csim",):
        kwargs["depths"] = _parse_depths(args.depth)
    try:
        result = sim_class(compiled, **kwargs).run()
    except DeadlockError as exc:
        print(f"DEADLOCK DETECTED: {exc}")
        return 2
    except UnsupportedDesignError as exc:
        print(f"UNSUPPORTED: {exc}")
        return 3
    print(f"design     : {result.design_name}")
    print(f"simulator  : {result.simulator}")
    if result.failure:
        print(f"failure    : {result.failure}")
    # Always printed: 0 is a legitimate cycle count (e.g. csim reports
    # no timing), and hiding it made failures look like truncated output.
    print(f"cycles     : {result.cycles}")
    for name, value in sorted(result.scalars.items()):
        print(f"output     : {name} = {value}")
    for warning in result.warnings[:10]:
        print(f"warning    : {warning}")
    if len(result.warnings) > 10:
        print(f"           ... and {len(result.warnings) - 10} more")
    print(f"events     : {result.stats.events}"
          f"  (queries: {result.stats.queries})")
    print(f"frontend   : {result.frontend_seconds:.3f} s")
    print(f"execution  : {result.execute_seconds:.3f} s")
    return 4 if result.failure else 0


def cmd_bench(args) -> int:
    return bench_module.main(smoke=args.smoke, out=args.out)


def cmd_dse(args) -> int:
    from .dse import DepthSpace, explore

    specs = list(args.ranges or []) + list(args.grids or [])
    if not specs:
        raise SystemExit(
            "dse needs at least one --range FIFO=LO:HI[:STEP] or "
            "--grid FIFO=V1,V2,..."
        )
    name = DSE_ALIASES.get(args.design, args.design)
    space = DepthSpace.parse(specs)
    sweep = explore(
        name, space, samples=args.samples, seed=args.seed,
        jobs=args.jobs, executor=args.executor,
    )

    print(f"design     : {sweep.design}")
    print(f"space      : {', '.join(space.fifos)}"
          f"  ({sweep.space_size} configurations)")
    print(f"evaluated  : {sweep.evaluated}"
          f"  (jobs: {sweep.jobs})")
    print(f"incremental: {sweep.incremental_count}"
          f"  ({100 * sweep.incremental_fraction:.1f}%)")
    print(f"full resim : {sweep.full_count}")
    if sweep.deadlock_count:
        print(f"deadlocked : {sweep.deadlock_count}")
    print(f"base       : cycles={sweep.base_cycles} depths="
          + ",".join(f"{k}={v}" for k, v in sorted(
              sweep.base_depths.items())))
    print(f"throughput : {sweep.configs_per_sec:,.1f} configs/s"
          f"  ({sweep.seconds:.3f} s sweep"
          f" + {sweep.capture_seconds:.3f} s capture)")

    pareto = sweep.pareto()
    rows = [
        (",".join(f"{f}={p.depths[f]}" for f in space.fifos),
         p.cycles, p.buffer_bits, p.source)
        for p in pareto
    ]
    print()
    print(render_table(
        ["depths", "cycles", "buffer bits", "via"], rows,
        title="Pareto frontier (cycles vs FIFO buffer bits)",
    ))
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(sweep.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json_out}")
    return 0


def cmd_classify(args) -> int:
    spec = designs.get(args.design)
    compiled = compile_design(spec.make())
    info = classify(compiled)
    print(f"design          : {spec.name}")
    print(f"type            : {info.design_type} "
          f"(registry label: {spec.design_type})")
    print(f"func sim level  : L{info.func_sim_level}")
    print(f"perf sim level  : L{info.perf_sim_level}")
    print(f"cyclic          : {info.cyclic}")
    print(f"non-blocking    : {info.has_nonblocking}")
    print(f"infinite loops  : {info.has_infinite_loop}")
    for reason in info.reasons:
        print(f"  - {reason}")
    return 0


def cmd_report(args) -> int:
    spec = designs.get(args.design)
    compiled = compile_design(spec.make())
    rows = []
    for module in compiled.modules:
        rows.append((
            module.name,
            len(module.function.blocks),
            module.schedule.total_static_states,
            str(module.static_latency),
        ))
    print(render_table(
        ["module", "blocks", "fsm states", "static latency"],
        rows, title=f"C-synthesis report for {spec.name}",
    ))
    print("\n('?' = latency not statically determinable; "
          "run a simulator for dynamic cycles)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="omnisim",
        description="OmniSim reproduction: simulate HLS dataflow designs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered designs")

    run_parser = sub.add_parser("run", help="simulate a design")
    run_parser.add_argument("design")
    run_parser.add_argument("--sim", choices=sorted(SIMULATORS),
                            default="omnisim")
    run_parser.add_argument("--executor", choices=sorted(EXECUTORS),
                            default=None,
                            help="Func Sim executor (default: compiled)")
    run_parser.add_argument("--depth", action="append", metavar="FIFO=N",
                            help="override a FIFO depth")

    bench_parser = sub.add_parser(
        "bench", help="run the performance benchmarks"
    )
    bench_parser.add_argument("--smoke", action="store_true",
                              help="small single-design run (for CI)")
    bench_parser.add_argument("--out", default="BENCH_perf.json",
                              help="output JSON path")

    dse_parser = sub.add_parser(
        "dse", help="depth-space exploration (FIFO depth sweep)"
    )
    dse_parser.add_argument(
        "design",
        help="registry design name, or a group alias "
             f"({', '.join(sorted(DSE_ALIASES))})",
    )
    dse_parser.add_argument("--range", action="append", dest="ranges",
                            metavar="FIFO=LO:HI[:STEP]",
                            help="sweep a FIFO over an inclusive range")
    dse_parser.add_argument("--grid", action="append", dest="grids",
                            metavar="FIFO=V1,V2,...",
                            help="sweep a FIFO over explicit depths")
    dse_parser.add_argument("--samples", type=int, default=None,
                            metavar="N",
                            help="evaluate N seeded random configurations "
                                 "instead of the full grid")
    dse_parser.add_argument("--seed", type=int, default=0,
                            help="sampling seed (default 0)")
    dse_parser.add_argument("--jobs", type=int, default=1, metavar="J",
                            help="shard configurations over J processes")
    dse_parser.add_argument("--executor", choices=sorted(EXECUTORS),
                            default=None,
                            help="Func Sim executor (default: compiled)")
    dse_parser.add_argument("--json", dest="json_out", metavar="FILE",
                            default=None,
                            help="write the full sweep result as JSON")

    classify_parser = sub.add_parser("classify",
                                     help="taxonomy analysis (Type A/B/C)")
    classify_parser.add_argument("design")

    report_parser = sub.add_parser("report",
                                   help="static C-synthesis report")
    report_parser.add_argument("design")

    args = parser.parse_args(argv)
    handler = {
        "list": cmd_list,
        "run": cmd_run,
        "classify": cmd_classify,
        "report": cmd_report,
        "dse": cmd_dse,
        "bench": cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
